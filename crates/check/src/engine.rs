//! The scheduling engine: serialized execution of model threads plus
//! exploration of the scheduling decision tree.
//!
//! # How a run works
//!
//! Every *model thread* is a real OS thread, but at most one is ever
//! *scheduled* at a time: each shadow-primitive operation (lock, unlock,
//! condvar wait/notify, atomic access, channel send/recv, spawn, join,
//! sleep) is a **yield point** that hands control back to the engine,
//! which picks the next thread to run from the set of runnable threads.
//! Under this serialization, the run's behaviour is a pure function of
//! the *schedule* — the sequence of pick-decisions — so re-running the
//! closure under a different schedule explores a different interleaving,
//! deterministically.
//!
//! # Exploration
//!
//! [`explore`] runs the closure repeatedly. In [`Mode::Exhaustive`] the
//! decisions form a tree walked depth-first: each run follows a replayed
//! *prefix* of decisions and defaults to "keep running the current
//! thread" past it, recording how many alternatives existed at every
//! step; the next run's prefix is the deepest not-yet-taken branch. The
//! walk is bounded by [`Config::max_schedules`] (and per-run by
//! [`Config::max_steps`]). [`Mode::Random`] instead draws every decision
//! from an explicitly seeded xorshift stream — no ambient entropy — which
//! reaches deep schedules the bounded DFS frontier cannot.
//!
//! # Failure detection
//!
//! * **Deadlock** — no thread is runnable but some are blocked. Reported
//!   with every blocked thread's wait reason and the trailing schedule
//!   trace.
//! * **Lost wakeup** — a deadlock in which at least one thread sits in a
//!   condvar wait: no reachable notify exists in the state the schedule
//!   steered into. Classified separately because it is the signature of
//!   a missing-notify protocol bug rather than a lock cycle.
//! * **Invariant violation** — any panic escaping the closure (a failed
//!   `assert!` in the test harness, or a protocol panic the harness did
//!   not expect). The original payload is preserved.
//!
//! On failure the engine stops serializing: every thread is woken, the
//! shadow primitives degrade to their real `std` counterparts so
//! unwinding destructors cannot wedge, and the failing schedule's trace
//! is attached to the report.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard};

thread_local! {
    static CURRENT: RefCell<Option<ThreadCtx>> = const { RefCell::new(None) };
}

/// The engine + model-thread-id pair installed in every model thread's
/// thread-local storage for the duration of a run.
#[derive(Clone)]
pub(crate) struct ThreadCtx {
    pub(crate) engine: Arc<Engine>,
    pub(crate) tid: usize,
}

/// The current thread's model context, if it is a model thread of a live
/// run. Shadow primitives capture this at construction and consult it per
/// operation; `None` means "behave exactly like `std`".
pub(crate) fn current_ctx() -> Option<ThreadCtx> {
    CURRENT.with(|c| c.borrow().clone())
}

pub(crate) fn install_ctx(ctx: Option<ThreadCtx>) -> Option<ThreadCtx> {
    CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), ctx))
}

/// Sentinel panic payload used to tear down a schedule once its outcome
/// is decided (failure detected or step budget exhausted). Distinguished
/// from user panics by downcast in [`try_explore`].
pub(crate) struct SchedAbort;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Runnable,
    Blocked(Wait),
    Finished,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Wait {
    Mutex(usize),
    Condvar(usize),
    Join(usize),
    ChanSend(usize),
    ChanRecv(usize),
}

impl fmt::Display for Wait {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Wait::Mutex(id) => write!(f, "mutex#{id}"),
            Wait::Condvar(id) => write!(f, "condvar#{id} (waiting for a notify)"),
            Wait::Join(tid) => write!(f, "join of t{tid}"),
            Wait::ChanSend(id) => write!(f, "channel#{id} send (buffer full)"),
            Wait::ChanRecv(id) => write!(f, "channel#{id} recv (buffer empty)"),
        }
    }
}

struct Thr {
    status: Status,
}

#[derive(Default)]
struct MutexSt {
    held: Option<usize>,
    waiters: VecDeque<usize>,
}

#[derive(Default)]
struct CvSt {
    /// `(waiting thread, the model mutex it released and must re-acquire)`.
    waiters: VecDeque<(usize, usize)>,
}

struct ChanSt {
    len: usize,
    cap: usize,
    senders: usize,
    recv_alive: bool,
    send_waiters: VecDeque<usize>,
    recv_waiters: VecDeque<usize>,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum RunOutcome {
    Running,
    /// Step budget exhausted — the schedule is abandoned, not a failure.
    Truncated,
    Deadlock(String),
    LostWakeup(String),
}

#[derive(Clone, Copy)]
struct TraceStep {
    tid: usize,
    op: &'static str,
    res: usize,
}

/// How many trailing schedule steps are kept for failure reports.
const TRACE_KEEP: usize = 64;

struct EngineState {
    threads: Vec<Thr>,
    cur: usize,
    /// Replayed decision prefix (exhaustive mode).
    prefix: Vec<u32>,
    cursor: usize,
    /// Every decision of this run: `(chosen index, runnable count)`.
    path: Vec<(u32, u32)>,
    trace: VecDeque<TraceStep>,
    steps: usize,
    outcome: RunOutcome,
    /// Seeded xorshift state (random mode); `None` = exhaustive default
    /// policy (keep running the current thread).
    rng: Option<u64>,
    mutexes: Vec<MutexSt>,
    condvars: Vec<CvSt>,
    chans: Vec<ChanSt>,
    atomics: usize,
}

impl EngineState {
    fn running(&self) -> bool {
        self.outcome == RunOutcome::Running
    }

    fn push_trace(&mut self, tid: usize, op: &'static str, res: usize) {
        if self.trace.len() == TRACE_KEEP {
            self.trace.pop_front();
        }
        self.trace.push_back(TraceStep { tid, op, res });
    }

    fn trace_string(&self) -> String {
        let mut s = String::new();
        if self.steps > TRACE_KEEP {
            s.push_str(&format!("… ({} earlier steps)\n", self.steps - TRACE_KEEP));
        }
        for step in &self.trace {
            s.push_str(&format!("t{} {} #{}\n", step.tid, step.op, step.res));
        }
        s
    }

    fn describe_blocked(&self) -> String {
        let mut s = String::new();
        for (i, t) in self.threads.iter().enumerate() {
            if let Status::Blocked(w) = t.status {
                s.push_str(&format!("t{i} blocked on {w}; "));
            }
        }
        s
    }
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x
}

/// The per-run scheduling engine. One engine per explored schedule; shadow
/// primitives hold it via `Arc` and compare pointer identity with the
/// current thread's context, so objects leaking across runs silently fall
/// back to real `std` behaviour instead of corrupting a later run.
pub(crate) struct Engine {
    st: StdMutex<EngineState>,
    cv: StdCondvar,
    max_steps: usize,
}

impl Engine {
    fn new(prefix: Vec<u32>, rng: Option<u64>, max_steps: usize) -> Self {
        Engine {
            st: StdMutex::new(EngineState {
                threads: vec![Thr {
                    status: Status::Runnable,
                }],
                cur: 0,
                prefix,
                cursor: 0,
                path: Vec::new(),
                trace: VecDeque::new(),
                steps: 0,
                outcome: RunOutcome::Running,
                rng,
                mutexes: Vec::new(),
                condvars: Vec::new(),
                chans: Vec::new(),
                atomics: 0,
            }),
            cv: StdCondvar::new(),
            max_steps,
        }
    }

    fn lock(&self) -> StdMutexGuard<'_, EngineState> {
        self.st
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Tears down the calling thread's participation once the run is over
    /// (failure or truncation). Outside unwinding, the thread aborts via
    /// the [`SchedAbort`] panic; during unwinding (drop guards of an
    /// already-aborting thread) it simply returns, letting the caller fall
    /// back to the real primitive so destructors finish.
    fn bail(&self) {
        if !std::thread::panicking() {
            std::panic::panic_any(SchedAbort);
        }
    }

    /// Picks the next thread to run. Must be called with the state lock
    /// held, by the thread that is currently scheduled (or finishing).
    fn reschedule(&self, st: &mut EngineState) {
        if !st.running() {
            return;
        }
        let mut runnable: Vec<usize> = Vec::with_capacity(st.threads.len());
        // Current-thread-first ordering: the default decision (index 0)
        // means "no preemption", which keeps default schedules short and
        // makes the DFS explore context switches as deviations.
        if st.threads[st.cur].status == Status::Runnable {
            runnable.push(st.cur);
        }
        for i in 0..st.threads.len() {
            if i != st.cur && st.threads[i].status == Status::Runnable {
                runnable.push(i);
            }
        }
        if runnable.is_empty() {
            if st
                .threads
                .iter()
                .any(|t| matches!(t.status, Status::Blocked(_)))
            {
                let desc = st.describe_blocked();
                let lost = st
                    .threads
                    .iter()
                    .any(|t| matches!(t.status, Status::Blocked(Wait::Condvar(_))));
                st.outcome = if lost {
                    RunOutcome::LostWakeup(desc)
                } else {
                    RunOutcome::Deadlock(desc)
                };
                self.cv.notify_all();
            }
            // All finished: the run ends naturally.
            return;
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.outcome = RunOutcome::Truncated;
            self.cv.notify_all();
            return;
        }
        let count = runnable.len() as u32;
        let idx = if st.cursor < st.prefix.len() {
            let i = st.prefix[st.cursor];
            st.cursor += 1;
            i.min(count - 1)
        } else if let Some(seed) = st.rng.as_mut() {
            (xorshift(seed) % u64::from(count)) as u32
        } else {
            0
        };
        st.path.push((idx, count));
        st.cur = runnable[idx as usize];
        self.cv.notify_all();
    }

    /// Blocks until this thread is the scheduled, runnable one (or the
    /// run is over).
    fn wait_for_turn<'a>(
        &'a self,
        mut st: StdMutexGuard<'a, EngineState>,
        tid: usize,
    ) -> StdMutexGuard<'a, EngineState> {
        loop {
            if !st.running() {
                return st;
            }
            if st.cur == tid && st.threads[tid].status == Status::Runnable {
                return st;
            }
            st = self
                .cv
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// A plain scheduling point: record the op, let the scheduler pick.
    pub(crate) fn yield_op(&self, tid: usize, op: &'static str, res: usize) {
        let mut st = self.lock();
        if !st.running() {
            drop(st);
            self.bail();
            return;
        }
        st.push_trace(tid, op, res);
        self.reschedule(&mut st);
        let st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
        }
    }

    // ---- resources -----------------------------------------------------

    pub(crate) fn new_mutex(&self) -> usize {
        let mut st = self.lock();
        st.mutexes.push(MutexSt::default());
        st.mutexes.len() - 1
    }

    pub(crate) fn new_condvar(&self) -> usize {
        let mut st = self.lock();
        st.condvars.push(CvSt::default());
        st.condvars.len() - 1
    }

    pub(crate) fn new_atomic(&self) -> usize {
        let mut st = self.lock();
        st.atomics += 1;
        st.atomics - 1
    }

    pub(crate) fn new_chan(&self, cap: usize) -> usize {
        let mut st = self.lock();
        st.chans.push(ChanSt {
            len: 0,
            cap,
            senders: 1,
            recv_alive: true,
            send_waiters: VecDeque::new(),
            recv_waiters: VecDeque::new(),
        });
        st.chans.len() - 1
    }

    // ---- mutex ---------------------------------------------------------

    /// Model-acquires `id` for `tid`, blocking (model-blocking) while it
    /// is held. Ownership is handed off FIFO by [`Self::mutex_release`].
    /// The caller takes the *real* lock afterwards, which is free by
    /// construction (the previous holder releases the real lock before
    /// the model one).
    pub(crate) fn mutex_acquire(&self, tid: usize, id: usize) {
        let mut st = self.lock();
        if !st.running() {
            drop(st);
            self.bail();
            return;
        }
        st.push_trace(tid, "lock", id);
        self.reschedule(&mut st);
        let mut st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
            return;
        }
        if st.mutexes[id].held.is_none() {
            st.mutexes[id].held = Some(tid);
            return;
        }
        st.mutexes[id].waiters.push_back(tid);
        st.threads[tid].status = Status::Blocked(Wait::Mutex(id));
        self.reschedule(&mut st);
        let st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
            return;
        }
        debug_assert_eq!(st.mutexes[id].held, Some(tid));
    }

    pub(crate) fn mutex_release(&self, tid: usize, id: usize) {
        let mut st = self.lock();
        if !st.running() {
            return;
        }
        st.push_trace(tid, "unlock", id);
        Self::transfer_mutex(&mut st, id);
        self.reschedule(&mut st);
        let st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
        }
    }

    /// FIFO handoff: the head waiter (if any) becomes the holder and is
    /// made runnable; otherwise the mutex is free.
    fn transfer_mutex(st: &mut EngineState, id: usize) {
        let m = &mut st.mutexes[id];
        if let Some(w) = m.waiters.pop_front() {
            m.held = Some(w);
            st.threads[w].status = Status::Runnable;
        } else {
            m.held = None;
        }
    }

    // ---- condvar -------------------------------------------------------

    /// Atomically (in model terms) releases `mutex`, parks on `cv`, and
    /// re-acquires `mutex` once notified. The caller must have dropped
    /// the real mutex guard first and re-takes it afterwards.
    pub(crate) fn condvar_wait(&self, tid: usize, cv: usize, mutex: usize) {
        let mut st = self.lock();
        if !st.running() {
            drop(st);
            self.bail();
            return;
        }
        st.push_trace(tid, "cv-wait", cv);
        debug_assert_eq!(st.mutexes[mutex].held, Some(tid));
        Self::transfer_mutex(&mut st, mutex);
        st.condvars[cv].waiters.push_back((tid, mutex));
        st.threads[tid].status = Status::Blocked(Wait::Condvar(cv));
        self.reschedule(&mut st);
        let st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
            return;
        }
        // A notify moved us to the mutex (granted directly or queued);
        // by the time we are scheduled again we must hold it.
        debug_assert_eq!(st.mutexes[mutex].held, Some(tid));
    }

    pub(crate) fn condvar_notify(&self, tid: usize, cv: usize, all: bool) {
        let mut st = self.lock();
        if !st.running() {
            return;
        }
        st.push_trace(tid, if all { "notify-all" } else { "notify-one" }, cv);
        while let Some((w, m)) = st.condvars[cv].waiters.pop_front() {
            // The woken waiter re-acquires its mutex: granted now if
            // free, else queued FIFO behind the current holder.
            if st.mutexes[m].held.is_none() {
                st.mutexes[m].held = Some(w);
                st.threads[w].status = Status::Runnable;
            } else {
                st.mutexes[m].waiters.push_back(w);
                st.threads[w].status = Status::Blocked(Wait::Mutex(m));
            }
            if !all {
                break;
            }
        }
        self.reschedule(&mut st);
        let st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
        }
    }

    // ---- threads -------------------------------------------------------

    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock();
        st.threads.push(Thr {
            status: Status::Runnable,
        });
        st.threads.len() - 1
    }

    /// First scheduling of a freshly spawned model thread: parks until
    /// the scheduler picks it.
    pub(crate) fn wait_first_schedule(&self, tid: usize) {
        let st = self.lock();
        let st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
        }
    }

    pub(crate) fn thread_finished(&self, tid: usize) {
        let mut st = self.lock();
        if !st.running() {
            return;
        }
        st.push_trace(tid, "exit", tid);
        st.threads[tid].status = Status::Finished;
        for i in 0..st.threads.len() {
            if st.threads[i].status == Status::Blocked(Wait::Join(tid)) {
                st.threads[i].status = Status::Runnable;
            }
        }
        self.reschedule(&mut st);
        // No wait_for_turn: this thread is done.
    }

    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        let mut st = self.lock();
        if !st.running() {
            drop(st);
            self.bail();
            return;
        }
        st.push_trace(tid, "join", target);
        if st.threads[target].status != Status::Finished {
            st.threads[tid].status = Status::Blocked(Wait::Join(target));
        }
        self.reschedule(&mut st);
        let st = self.wait_for_turn(st, tid);
        if !st.running() {
            drop(st);
            self.bail();
        }
    }

    // ---- channels ------------------------------------------------------

    /// Reserves one buffer slot, model-blocking while the channel is full.
    /// `Err` means the receiver is gone. On `Ok` the caller pushes the
    /// value into the real buffer *before its next scheduling point*, so
    /// a later-scheduled receiver always finds the data its reservation
    /// promised.
    pub(crate) fn chan_send(&self, tid: usize, id: usize) -> Result<(), ()> {
        let mut st = self.lock();
        if !st.running() {
            drop(st);
            self.bail();
            return Err(());
        }
        st.push_trace(tid, "send", id);
        self.reschedule(&mut st);
        let mut st = self.wait_for_turn(st, tid);
        loop {
            if !st.running() {
                drop(st);
                self.bail();
                return Err(());
            }
            let c = &mut st.chans[id];
            if !c.recv_alive {
                return Err(());
            }
            if c.len < c.cap {
                c.len += 1;
                if let Some(w) = c.recv_waiters.pop_front() {
                    st.threads[w].status = Status::Runnable;
                }
                return Ok(());
            }
            c.send_waiters.push_back(tid);
            st.threads[tid].status = Status::Blocked(Wait::ChanSend(id));
            self.reschedule(&mut st);
            st = self.wait_for_turn(st, tid);
        }
    }

    /// Claims one buffered value, model-blocking while the channel is
    /// empty. `Err` means every sender is gone *and* the buffer is
    /// drained. On `Ok` the caller pops the real buffer immediately.
    pub(crate) fn chan_recv(&self, tid: usize, id: usize) -> Result<(), ()> {
        let mut st = self.lock();
        if !st.running() {
            drop(st);
            self.bail();
            return Err(());
        }
        st.push_trace(tid, "recv", id);
        self.reschedule(&mut st);
        let mut st = self.wait_for_turn(st, tid);
        loop {
            if !st.running() {
                drop(st);
                self.bail();
                return Err(());
            }
            let c = &mut st.chans[id];
            if c.len > 0 {
                c.len -= 1;
                if let Some(w) = c.send_waiters.pop_front() {
                    st.threads[w].status = Status::Runnable;
                }
                return Ok(());
            }
            if c.senders == 0 {
                return Err(());
            }
            c.recv_waiters.push_back(tid);
            st.threads[tid].status = Status::Blocked(Wait::ChanRecv(id));
            self.reschedule(&mut st);
            st = self.wait_for_turn(st, tid);
        }
    }

    pub(crate) fn chan_sender_cloned(&self, id: usize) {
        let mut st = self.lock();
        if st.running() {
            st.chans[id].senders += 1;
        }
    }

    pub(crate) fn chan_sender_dropped(&self, id: usize) {
        let mut st = self.lock();
        if !st.running() {
            return;
        }
        let c = &mut st.chans[id];
        c.senders -= 1;
        if c.senders == 0 {
            // Receivers blocked on an empty buffer must re-check and see
            // the disconnect.
            let waiters = std::mem::take(&mut c.recv_waiters);
            for w in waiters {
                st.threads[w].status = Status::Runnable;
            }
            self.cv.notify_all();
        }
    }

    pub(crate) fn chan_recv_dropped(&self, id: usize) {
        let mut st = self.lock();
        if !st.running() {
            return;
        }
        let c = &mut st.chans[id];
        c.recv_alive = false;
        let waiters = std::mem::take(&mut c.send_waiters);
        for w in waiters {
            st.threads[w].status = Status::Runnable;
        }
        self.cv.notify_all();
    }

    // ---- run finalisation ---------------------------------------------

    /// Joins every still-unfinished model thread from the root. Stuck
    /// threads surface as deadlock via the normal detection path.
    fn root_drain(&self) {
        loop {
            let target = {
                let st = self.lock();
                if !st.running() {
                    drop(st);
                    self.bail();
                    return;
                }
                (1..st.threads.len()).find(|&i| st.threads[i].status != Status::Finished)
            };
            match target {
                Some(t) => self.join_thread(0, t),
                None => return,
            }
        }
    }

    fn finish(&self) -> (Vec<(u32, u32)>, RunOutcome, String) {
        let st = self.lock();
        (st.path.clone(), st.outcome.clone(), st.trace_string())
    }
}

// ---- public exploration API ---------------------------------------------

/// Decision policy of an exploration (see the module docs).
#[derive(Clone, Copy, Debug)]
pub enum Mode {
    /// Bounded depth-first enumeration of all schedules.
    Exhaustive,
    /// Every decision drawn from a xorshift stream seeded explicitly —
    /// schedules may repeat, but arbitrarily deep deviations are
    /// reachable, unlike the DFS frontier under a tight budget.
    Random {
        /// The explicit seed; the i-th run uses a stream derived from
        /// `seed` and `i`, so reports are reproducible by seed.
        seed: u64,
    },
}

/// Exploration budget and policy.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Maximum number of schedules to run.
    pub max_schedules: usize,
    /// Maximum scheduling decisions per run; longer schedules are
    /// truncated (counted, not failed).
    pub max_steps: usize,
    /// Decision policy.
    pub mode: Mode,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 2_000,
            max_steps: 20_000,
            mode: Mode::Exhaustive,
        }
    }
}

impl Config {
    /// Exhaustive exploration bounded to `max_schedules` runs.
    #[must_use]
    pub fn exhaustive(max_schedules: usize) -> Self {
        Config {
            max_schedules,
            ..Config::default()
        }
    }

    /// Seeded random exploration of exactly `max_schedules` runs.
    #[must_use]
    pub fn random(seed: u64, max_schedules: usize) -> Self {
        Config {
            max_schedules,
            max_steps: Config::default().max_steps,
            mode: Mode::Random { seed },
        }
    }
}

/// What an exploration covered.
#[derive(Clone, Debug)]
pub struct Report {
    /// Schedules actually run. In exhaustive mode every one is a distinct
    /// interleaving (the DFS never repeats a decision sequence).
    pub schedules: usize,
    /// Whether the exhaustive walk visited the *entire* decision tree
    /// within the budget (always `false` in random mode).
    pub exhausted: bool,
    /// Schedules abandoned at [`Config::max_steps`].
    pub truncated: usize,
}

/// A failed exploration: the schedule that broke plus why.
#[derive(Debug)]
pub enum Failure {
    /// No runnable thread, at least one blocked, none in a condvar wait.
    Deadlock {
        /// Per-thread wait reasons.
        blocked: String,
        /// Trailing schedule trace.
        trace: String,
    },
    /// A deadlock in which some thread waits on a condvar: the schedule
    /// reached a state from which no matching notify is reachable.
    LostWakeup {
        /// Per-thread wait reasons.
        blocked: String,
        /// Trailing schedule trace.
        trace: String,
    },
    /// A panic escaped the closure: a failed harness assertion or an
    /// unexpected protocol panic.
    Panic {
        /// The panic message, if it was a string payload.
        message: String,
        /// Trailing schedule trace.
        trace: String,
    },
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::Deadlock { blocked, trace } => {
                write!(f, "deadlock: {blocked}\nschedule trace:\n{trace}")
            }
            Failure::LostWakeup { blocked, trace } => write!(
                f,
                "lost wakeup (deadlock with a condvar waiter): {blocked}\nschedule trace:\n{trace}"
            ),
            Failure::Panic { message, trace } => write!(
                f,
                "invariant violation: {message}\nschedule trace:\n{trace}"
            ),
        }
    }
}

/// Runs `f` under exhaustive/randomised bounded interleaving exploration;
/// panics with the failing schedule's trace on the first failure. See
/// [`try_explore`] for the non-panicking variant.
pub fn explore(config: &Config, f: impl Fn()) -> Report {
    match try_explore(config, f) {
        Ok(report) => report,
        Err(failure) => panic!("model check failed: {failure}"),
    }
}

/// Runs `f` repeatedly under controlled schedules (see the module docs)
/// and reports either the coverage achieved or the first failing
/// schedule.
///
/// `f` must be deterministic apart from the scheduling the engine
/// controls: no ambient entropy, no wall-clock branching. All shadow
/// primitives it constructs are registered in construction order, which
/// is what makes a recorded decision prefix replayable.
pub fn try_explore(config: &Config, f: impl Fn()) -> Result<Report, Failure> {
    let mut prefix: Vec<u32> = Vec::new();
    let mut schedules = 0usize;
    let mut truncated = 0usize;
    loop {
        let (rng, replay) = match config.mode {
            Mode::Exhaustive => (None, std::mem::take(&mut prefix)),
            Mode::Random { seed } => (
                Some(
                    seed.wrapping_add(schedules as u64)
                        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        | 1,
                ),
                Vec::new(),
            ),
        };
        let engine = Arc::new(Engine::new(replay, rng, config.max_steps));
        let prev = install_ctx(Some(ThreadCtx {
            engine: Arc::clone(&engine),
            tid: 0,
        }));
        let result = catch_unwind(AssertUnwindSafe(|| {
            f();
            engine.root_drain();
        }));
        install_ctx(prev);
        schedules += 1;
        let (path, outcome, trace) = engine.finish();
        match result {
            Ok(()) => match outcome {
                RunOutcome::Truncated => truncated += 1,
                RunOutcome::Running => {}
                // A decided outcome with a clean return can only happen if
                // the closure raced the teardown; treat it as the failure
                // it is.
                RunOutcome::Deadlock(blocked) => return Err(Failure::Deadlock { blocked, trace }),
                RunOutcome::LostWakeup(blocked) => {
                    return Err(Failure::LostWakeup { blocked, trace })
                }
            },
            Err(payload) => {
                if payload.downcast_ref::<SchedAbort>().is_some() {
                    match outcome {
                        RunOutcome::Deadlock(blocked) => {
                            return Err(Failure::Deadlock { blocked, trace })
                        }
                        RunOutcome::LostWakeup(blocked) => {
                            return Err(Failure::LostWakeup { blocked, trace })
                        }
                        // Truncation tears down via the same abort path.
                        RunOutcome::Truncated => truncated += 1,
                        RunOutcome::Running => {
                            return Err(Failure::Panic {
                                message: "schedule aborted without a recorded outcome".into(),
                                trace,
                            })
                        }
                    }
                } else {
                    let message = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    return Err(Failure::Panic { message, trace });
                }
            }
        }
        if schedules >= config.max_schedules {
            return Ok(Report {
                schedules,
                exhausted: false,
                truncated,
            });
        }
        match config.mode {
            Mode::Random { .. } => {}
            Mode::Exhaustive => {
                // DFS: deepest decision with an untaken alternative.
                let Some(i) = (0..path.len()).rfind(|&i| path[i].0 + 1 < path[i].1) else {
                    return Ok(Report {
                        schedules,
                        exhausted: true,
                        truncated,
                    });
                };
                prefix = path[..i].iter().map(|&(c, _)| c).collect();
                prefix.push(path[i].0 + 1);
            }
        }
    }
}
