//! Shadow synchronisation primitives.
//!
//! Each type wraps its real `std::sync` counterpart plus an optional
//! *model handle* captured at construction: if the constructing thread
//! was a model thread of a live [`crate::engine`] run, every operation
//! first routes through the engine (a scheduling point, plus model-level
//! blocking), and only then touches the real primitive — which by
//! construction is uncontended, because the engine serializes execution.
//! Constructed outside a run (or touched by a non-model thread), the
//! types behave exactly like `std`; this graceful fallback is what lets
//! an entire workspace build under `--cfg crpq_model_check` without
//! gating every non-model test.
//!
//! Poisoning is faithful: the real primitive underneath poisons when a
//! guard drops during unwind, and the shadow types surface that as the
//! same `std::sync::PoisonError` the façade's `std` build produces.

use crate::engine::{current_ctx, Engine};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

pub use std::sync::{LockResult, PoisonError};

/// The engine this primitive was registered with, plus its resource id.
struct ModelHandle {
    engine: Arc<Engine>,
    id: usize,
}

impl ModelHandle {
    /// The calling thread's model tid — only if it belongs to the *same*
    /// run as the primitive. A primitive leaking across runs (or used
    /// from a non-model thread) falls back to real `std` behaviour.
    fn active_tid(&self) -> Option<usize> {
        let ctx = current_ctx()?;
        Arc::ptr_eq(&ctx.engine, &self.engine).then_some(ctx.tid)
    }
}

fn model_handle(register: impl FnOnce(&Engine) -> usize) -> Option<ModelHandle> {
    current_ctx().map(|ctx| ModelHandle {
        id: register(&ctx.engine),
        engine: ctx.engine,
    })
}

// ---- Mutex ---------------------------------------------------------------

/// Shadow of [`std::sync::Mutex`]; see the module docs.
pub struct Mutex<T> {
    model: Option<ModelHandle>,
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(t: T) -> Self {
        Mutex {
            model: model_handle(Engine::new_mutex),
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Shadow of [`std::sync::Mutex::lock`], with the same poisoning
    /// contract.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if let Some(m) = &self.model {
            if let Some(tid) = m.active_tid() {
                m.engine.mutex_acquire(tid, m.id);
            }
        }
        // Uncontended when model-scheduled; real contention only in
        // fallback mode.
        match self.inner.lock() {
            Ok(g) => Ok(MutexGuard {
                lock: self,
                inner: Some(g),
            }),
            Err(p) => Err(PoisonError::new(MutexGuard {
                lock: self,
                inner: Some(p.into_inner()),
            })),
        }
    }

    /// Shadow of [`std::sync::Mutex::into_inner`].
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner().map_err(|p| {
            let t = p.into_inner();
            PoisonError::new(t)
        })
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.inner.fmt(f)
    }
}

/// Shadow of [`std::sync::MutexGuard`].
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    /// `None` only transiently inside [`Condvar::wait`] disassembly.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> MutexGuard<'_, T> {
    fn real(&self) -> &std::sync::MutexGuard<'_, T> {
        match &self.inner {
            Some(g) => g,
            None => unreachable!("shadow guard used after disassembly"),
        }
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.real()
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match &mut self.inner {
            Some(g) => g,
            None => unreachable!("shadow guard used after disassembly"),
        }
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Order matters: the real lock must be free before the model
        // handoff makes a waiter runnable, otherwise the waiter could be
        // scheduled into a real block while the engine believes it runs.
        drop(self.inner.take());
        if let Some(m) = &self.lock.model {
            if let Some(tid) = m.active_tid() {
                m.engine.mutex_release(tid, m.id);
            }
        }
    }
}

// ---- Condvar -------------------------------------------------------------

/// Shadow of [`std::sync::Condvar`]; see the module docs. Spurious
/// wakeups are **not** modelled — an engine-scheduled wait returns only
/// after a matching notify, which is exactly what makes lost-wakeup
/// detection sound.
pub struct Condvar {
    model: Option<ModelHandle>,
    inner: std::sync::Condvar,
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl Condvar {
    #[must_use]
    pub fn new() -> Self {
        Condvar {
            model: model_handle(Engine::new_condvar),
            inner: std::sync::Condvar::new(),
        }
    }

    /// Shadow of [`std::sync::Condvar::wait`].
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let lock = guard.lock;
        let model = match (&self.model, &lock.model) {
            (Some(cv), Some(m)) => match (cv.active_tid(), m.active_tid()) {
                (Some(tid), Some(_)) if Arc::ptr_eq(&cv.engine, &m.engine) => Some((cv, m.id, tid)),
                _ => None,
            },
            _ => None,
        };
        match model {
            Some((cv, mutex_id, tid)) => {
                // Disassemble the guard: drop the real lock, neutralise
                // the shadow guard's drop (the engine wait below releases
                // and re-acquires the model side itself).
                drop(guard.inner.take());
                std::mem::forget(guard);
                cv.engine.condvar_wait(tid, cv.id, mutex_id);
                // Model-side re-acquired; the real lock is free.
                match lock.inner.lock() {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                    })),
                }
            }
            None => {
                let inner = match guard.inner.take() {
                    Some(g) => g,
                    None => unreachable!("shadow guard used after disassembly"),
                };
                std::mem::forget(guard);
                match self.inner.wait(inner) {
                    Ok(g) => Ok(MutexGuard {
                        lock,
                        inner: Some(g),
                    }),
                    Err(p) => Err(PoisonError::new(MutexGuard {
                        lock,
                        inner: Some(p.into_inner()),
                    })),
                }
            }
        }
    }

    pub fn notify_one(&self) {
        if let Some(cv) = &self.model {
            if let Some(tid) = cv.active_tid() {
                cv.engine.condvar_notify(tid, cv.id, false);
            }
        }
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        if let Some(cv) = &self.model {
            if let Some(tid) = cv.active_tid() {
                cv.engine.condvar_notify(tid, cv.id, true);
            }
        }
        self.inner.notify_all();
    }
}

// ---- atomics -------------------------------------------------------------

pub mod atomic {
    //! Shadow atomics: every access is a scheduling point; the value
    //! itself lives in the real `std` atomic (execution is serialized,
    //! so sequential consistency is what the engine explores).
    use super::{model_handle, ModelHandle};
    use crate::engine::Engine;

    pub use std::sync::atomic::Ordering;

    macro_rules! shadow_atomic {
        ($name:ident, $std:ty, $prim:ty) => {
            /// Shadow of the corresponding `std::sync::atomic` type; see
            /// the module docs.
            pub struct $name {
                model: Option<ModelHandle>,
                inner: $std,
            }

            impl $name {
                pub fn new(v: $prim) -> Self {
                    $name {
                        model: model_handle(Engine::new_atomic),
                        inner: <$std>::new(v),
                    }
                }

                fn yield_point(&self, op: &'static str) {
                    if let Some(m) = &self.model {
                        if let Some(tid) = m.active_tid() {
                            m.engine.yield_op(tid, op, m.id);
                        }
                    }
                }

                pub fn load(&self, order: Ordering) -> $prim {
                    self.yield_point("atomic-load");
                    self.inner.load(order)
                }

                pub fn store(&self, v: $prim, order: Ordering) {
                    self.yield_point("atomic-store");
                    self.inner.store(v, order);
                }

                pub fn swap(&self, v: $prim, order: Ordering) -> $prim {
                    self.yield_point("atomic-swap");
                    self.inner.swap(v, order)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    shadow_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    shadow_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

    impl AtomicUsize {
        pub fn fetch_add(&self, v: usize, order: Ordering) -> usize {
            self.yield_point("atomic-fetch-add");
            self.inner.fetch_add(v, order)
        }

        pub fn fetch_sub(&self, v: usize, order: Ordering) -> usize {
            self.yield_point("atomic-fetch-sub");
            self.inner.fetch_sub(v, order)
        }
    }
}

// ---- mpsc ----------------------------------------------------------------

pub mod mpsc {
    //! Shadow of the subset of [`std::sync::mpsc`] the workspace uses:
    //! bounded [`sync_channel`] with blocking `send`/`recv` and
    //! disconnect-on-drop semantics.
    use crate::engine::{current_ctx, Engine};
    use std::collections::VecDeque;
    use std::sync::Arc;

    pub use std::sync::mpsc::{RecvError, SendError, TryRecvError};

    /// The model-mode channel: engine ledger decides blocking and
    /// capacity; the values themselves live in `buf`. The buffer mutex is
    /// never contended (serialized execution) — it exists to make the
    /// type `Sync` without unsafe code.
    struct ModelChan<T> {
        engine: Arc<Engine>,
        id: usize,
        buf: std::sync::Mutex<VecDeque<T>>,
    }

    impl<T> ModelChan<T> {
        fn tid(&self) -> Option<usize> {
            let ctx = current_ctx()?;
            Arc::ptr_eq(&ctx.engine, &self.engine).then_some(ctx.tid)
        }

        fn push(&self, t: T) {
            self.buf
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push_back(t);
        }

        fn pop(&self) -> Option<T> {
            self.buf
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .pop_front()
        }
    }

    enum SenderImpl<T> {
        Std(std::sync::mpsc::SyncSender<T>),
        Model(Arc<ModelChan<T>>),
    }

    /// Shadow of [`std::sync::mpsc::SyncSender`].
    pub struct SyncSender<T>(SenderImpl<T>);

    impl<T> SyncSender<T> {
        /// Shadow of [`std::sync::mpsc::SyncSender::send`]: blocks while
        /// the buffer is full, errors once the receiver is gone.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            match &self.0 {
                SenderImpl::Std(tx) => tx.send(t),
                SenderImpl::Model(chan) => match chan.tid() {
                    Some(tid) => match chan.engine.chan_send(tid, chan.id) {
                        Ok(()) => {
                            // Must complete before this thread's next
                            // scheduling point — see `Engine::chan_send`.
                            chan.push(t);
                            Ok(())
                        }
                        Err(()) => Err(SendError(t)),
                    },
                    // Non-model caller of a model channel: no engine
                    // semantics to honour, just move the value.
                    None => {
                        chan.push(t);
                        Ok(())
                    }
                },
            }
        }
    }

    impl<T> Clone for SyncSender<T> {
        fn clone(&self) -> Self {
            match &self.0 {
                SenderImpl::Std(tx) => SyncSender(SenderImpl::Std(tx.clone())),
                SenderImpl::Model(chan) => {
                    chan.engine.chan_sender_cloned(chan.id);
                    SyncSender(SenderImpl::Model(Arc::clone(chan)))
                }
            }
        }
    }

    impl<T> Drop for SyncSender<T> {
        fn drop(&mut self) {
            if let SenderImpl::Model(chan) = &self.0 {
                chan.engine.chan_sender_dropped(chan.id);
            }
        }
    }

    enum ReceiverImpl<T> {
        Std(std::sync::mpsc::Receiver<T>),
        Model(Arc<ModelChan<T>>),
    }

    /// Shadow of [`std::sync::mpsc::Receiver`].
    pub struct Receiver<T>(ReceiverImpl<T>);

    impl<T> Receiver<T> {
        /// Shadow of [`std::sync::mpsc::Receiver::recv`]: blocks while
        /// the buffer is empty, errors once it is drained and every
        /// sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            match &self.0 {
                ReceiverImpl::Std(rx) => rx.recv(),
                ReceiverImpl::Model(chan) => match chan.tid() {
                    Some(tid) => match chan.engine.chan_recv(tid, chan.id) {
                        Ok(()) => match chan.pop() {
                            Some(t) => Ok(t),
                            None => Err(RecvError),
                        },
                        Err(()) => Err(RecvError),
                    },
                    None => chan.pop().ok_or(RecvError),
                },
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            if let ReceiverImpl::Model(chan) = &self.0 {
                chan.engine.chan_recv_dropped(chan.id);
            }
        }
    }

    /// Shadow of [`std::sync::mpsc::sync_channel`].
    #[must_use]
    pub fn sync_channel<T>(bound: usize) -> (SyncSender<T>, Receiver<T>) {
        match current_ctx() {
            Some(ctx) => {
                let chan = Arc::new(ModelChan {
                    id: ctx.engine.new_chan(bound),
                    engine: ctx.engine,
                    buf: std::sync::Mutex::new(VecDeque::new()),
                });
                (
                    SyncSender(SenderImpl::Model(Arc::clone(&chan))),
                    Receiver(ReceiverImpl::Model(chan)),
                )
            }
            None => {
                let (tx, rx) = std::sync::mpsc::sync_channel(bound);
                (
                    SyncSender(SenderImpl::Std(tx)),
                    Receiver(ReceiverImpl::Std(rx)),
                )
            }
        }
    }
}

// Re-export so `crpq_check::sync::{...}` mirrors the façade layout.
pub use atomic::{AtomicBool, AtomicUsize};
