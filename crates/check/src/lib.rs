//! A loom-style deterministic concurrency model checker, written
//! in-repo under the offline-shim constraint (no external dependencies).
//!
//! The workspace's hand-rolled concurrency — the work-stealing join
//! scheduler's chunked-deque + condvar quiescence protocol, its cancel
//! flag, the stream producer's bounded-channel backpressure, the shared
//! catalog/sink mutexes — is verified by *exploring interleavings*, in
//! the tradition of CHESS and loom / CDSChecker (stateless model
//! checking; the DPOR line of Flanagan & Godefroid): the code under test
//! runs against **shadow synchronisation primitives** ([`sync`],
//! [`thread`]) that yield to a controlled scheduler at every
//! acquire/release/atomic-access/park point, and [`explore`] re-runs a
//! closure under exhaustively enumerated (or seeded-random) schedules,
//! detecting deadlock, lost wakeups and user-asserted invariant
//! violations, and printing the failing schedule's trace.
//!
//! Production builds never see any of this: the [`crpq_util::sync`]
//! façade re-exports `std::sync`/`std::thread` verbatim unless the
//! workspace is compiled with `RUSTFLAGS="--cfg crpq_model_check"`, in
//! which case the façade routes here. The shadow types additionally
//! degrade to their real `std` counterparts whenever they are used
//! outside a live exploration, so a `--cfg crpq_model_check` build
//! passes the entire ordinary test suite too.
//!
//! # Example
//!
//! ```
//! use crpq_check::{explore, Config};
//! use crpq_check::sync::Mutex;
//! use crpq_check::thread;
//!
//! let report = explore(&Config::exhaustive(1_000), || {
//!     let counter = Mutex::new(0usize);
//!     thread::scope(|s| {
//!         for _ in 0..2 {
//!             s.spawn(|| {
//!                 let mut g = counter.lock().unwrap_or_else(|e| e.into_inner());
//!                 *g += 1;
//!             });
//!         }
//!     });
//!     assert_eq!(*counter.lock().unwrap_or_else(|e| e.into_inner()), 2);
//! });
//! assert!(report.exhausted);
//! ```
//!
//! [`crpq_util::sync`]: https://docs.rs/crpq-util

mod engine;
pub mod sync;
pub mod thread;

pub use engine::{explore, try_explore, Config, Failure, Mode, Report};

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::{mpsc, Condvar, Mutex};
    use super::{explore, thread, try_explore, Config, Failure};

    fn lock<'a, T>(m: &'a Mutex<T>) -> crate::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // ---- textbook detector tests (satellite) --------------------------

    #[test]
    fn detects_ab_ba_deadlock() {
        // The 3-line textbook example: t1 locks A then B, t2 locks B
        // then A. Some interleaving deadlocks; the checker must find it.
        let failure = try_explore(&Config::exhaustive(1_000), || {
            let a = Mutex::new(());
            let b = Mutex::new(());
            thread::scope(|s| {
                s.spawn(|| {
                    let _ga = lock(&a);
                    let _gb = lock(&b);
                });
                s.spawn(|| {
                    let _gb = lock(&b);
                    let _ga = lock(&a);
                });
            });
        })
        .expect_err("AB-BA locking must deadlock under some schedule");
        match failure {
            Failure::Deadlock { blocked, .. } => {
                assert!(blocked.contains("mutex"), "unhelpful report: {blocked}");
            }
            other => panic!("expected a deadlock report, got: {other}"),
        }
    }

    #[test]
    fn detects_lost_wakeup() {
        // Textbook missing-notify: the waiter can park after the setter
        // already ran, and nobody will ever notify.
        let failure = try_explore(&Config::exhaustive(1_000), || {
            let flag = Mutex::new(false);
            let cv = Condvar::new();
            thread::scope(|s| {
                s.spawn(|| {
                    let mut g = lock(&flag);
                    while !*g {
                        g = cv
                            .wait(g)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                });
                s.spawn(|| {
                    *lock(&flag) = true;
                    // BUG: no cv.notify_one() here.
                });
            });
        })
        .expect_err("wait without notify must be caught");
        assert!(
            matches!(failure, Failure::LostWakeup { .. }),
            "expected lost-wakeup classification, got: {failure}"
        );
    }

    #[test]
    fn correct_wait_notify_passes() {
        let report = explore(&Config::exhaustive(2_000), || {
            let flag = Mutex::new(false);
            let cv = Condvar::new();
            thread::scope(|s| {
                s.spawn(|| {
                    let mut g = lock(&flag);
                    while !*g {
                        g = cv
                            .wait(g)
                            .unwrap_or_else(std::sync::PoisonError::into_inner);
                    }
                });
                s.spawn(|| {
                    *lock(&flag) = true;
                    cv.notify_one();
                });
            });
        });
        assert!(report.exhausted, "tiny protocol must be fully explored");
        assert!(report.schedules > 1, "exploration must branch");
    }

    // ---- exploration machinery ----------------------------------------

    #[test]
    fn finds_racy_check_then_act() {
        // Two threads read-then-increment a shared counter through
        // separate atomic ops; exhaustive exploration must find the
        // interleaving where both read 0 and the final value is 1.
        let failure = try_explore(&Config::exhaustive(2_000), || {
            let n = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let seen = n.load(Ordering::SeqCst);
                        n.store(seen + 1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        })
        .expect_err("the lost-update interleaving must be found");
        assert!(
            matches!(&failure, Failure::Panic { message, .. } if message.contains("lost update")),
            "expected the harness assertion, got: {failure}"
        );
    }

    #[test]
    fn atomic_increment_is_race_free() {
        let report = explore(&Config::exhaustive(2_000), || {
            let n = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        n.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
        assert!(report.exhausted);
    }

    #[test]
    fn random_mode_is_seed_deterministic_and_finds_races() {
        let racy = || {
            let n = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let seen = n.load(Ordering::SeqCst);
                        n.store(seen + 1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        };
        let f1 = try_explore(&Config::random(42, 500), racy);
        let f2 = try_explore(&Config::random(42, 500), racy);
        // Same seed → same exploration → identical verdicts.
        assert_eq!(f1.is_err(), f2.is_err());
        assert!(f1.is_err(), "seeded fuzz must find the lost update");
    }

    #[test]
    fn channel_backpressure_and_disconnect() {
        // Producer pushes 4 values through a capacity-1 channel; the
        // consumer takes two and hangs up. The producer must never
        // deadlock: its next send fails and it exits.
        let report = explore(&Config::exhaustive(2_000), || {
            let (tx, rx) = mpsc::sync_channel::<usize>(1);
            let producer = thread::spawn(move || {
                let mut sent = 0usize;
                for i in 0..4 {
                    if tx.send(i).is_err() {
                        break;
                    }
                    sent += 1;
                }
                sent
            });
            let first = rx.recv().expect("producer sends at least one");
            assert_eq!(first, 0);
            let _ = rx.recv().expect("producer sends a second");
            drop(rx);
            let sent = producer
                .join()
                .expect("producer must exit cleanly after hangup");
            assert!((2..=3).contains(&sent), "bounded overshoot, got {sent}");
        });
        assert!(report.schedules > 1);
    }

    #[test]
    fn panicking_model_thread_propagates_payload() {
        // Same contract as std: an explicit join returns the child's
        // original payload (this is what collect_worker_results relies on
        // to re-raise worker panics verbatim).
        let report = explore(&Config::exhaustive(500), || {
            thread::scope(|s| {
                let h = s.spawn(|| panic!("injected model panic"));
                s.spawn(|| ());
                let payload = h.join().expect_err("child panicked");
                let msg = payload
                    .downcast_ref::<&str>()
                    .expect("payload must survive intact");
                assert_eq!(*msg, "injected model panic");
            });
        });
        assert!(report.schedules >= 1);
    }

    #[test]
    fn exploration_counts_distinct_schedules() {
        // Three threads of two atomic ops each: the decision tree is far
        // bigger than 1000 schedules, so a budget of 1000 must be spent
        // fully — this pins the "explores >= 10^3 schedules" capability.
        let report = explore(&Config::exhaustive(1_000), || {
            let n = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..3 {
                    s.spawn(|| {
                        n.fetch_add(1, Ordering::SeqCst);
                        n.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(n.load(Ordering::SeqCst), 6);
        });
        assert_eq!(report.schedules, 1_000);
        assert!(!report.exhausted);
    }

    #[test]
    fn fallback_outside_exploration_behaves_like_std() {
        // No explore() call: every shadow primitive must act as plain
        // std. This is the same property the façade's std build relies
        // on, exercised on the shadow side.
        let n = AtomicUsize::new(0);
        let m = Mutex::new(0usize);
        let (tx, rx) = mpsc::sync_channel::<usize>(2);
        thread::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    n.fetch_add(1, Ordering::SeqCst);
                    *lock(&m) += 1;
                });
            }
        });
        tx.send(7).expect("receiver alive");
        assert_eq!(rx.recv().expect("value queued"), 7);
        assert_eq!(n.load(Ordering::SeqCst), 2);
        assert_eq!(*lock(&m), 2);
    }
}
