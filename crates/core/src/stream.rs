//! Pull-based answer enumeration.
//!
//! [`eval_stream`] returns a [`TupleStream`] — an iterator over distinct
//! answer tuples that starts yielding while the join search is still
//! running, instead of waiting for the full materialised set. A producer
//! thread runs the normal engine (sequential [`eval_sink_join`] or the
//! work-stealing scheduler for [`eval_stream_parallel`]) into a
//! channel-backed [`StreamSink`]; the bounded channel
//! ([`STREAM_CHANNEL_CAPACITY`]) gives backpressure, so a slow consumer
//! throttles the search rather than buffering the whole answer set.
//!
//! Dropping the stream early is the cancellation path: the receiver
//! closes, the producer's next send fails, the sink flips to `closed` and
//! answers [`SinkStatus::Stop`] / `should_stop`, and the search unwinds —
//! the same early-exit contract `LIMIT k` uses (see the module docs of
//! [`crate::eval`]). `Drop` then joins the producer, so no detached
//! thread outlives the stream; a panic on the producer is re-raised to
//! the consumer at end-of-stream or on drop.
//!
//! Streams yield **distinct** tuples in discovery order; collecting and
//! sorting a stream equals [`crate::eval_tuples`] under every semantics
//! and executor (pinned by the differential tests in
//! `tests/stream_equivalence.rs`).

use crate::eval::{
    eval_sink_join, eval_tuples_enumerate, EvalStrategy, JoinMode, RelationCatalog, Semantics,
    SinkStatus, TupleSink,
};
use crate::parallel::eval_parallel_sink;
use crpq_graph::{GraphView, NodeId};
use crpq_query::Crpq;
use crpq_util::sync::mpsc::{sync_channel, Receiver, SyncSender};
use crpq_util::sync::thread::{self, JoinHandle};
use crpq_util::FxHashSet;
use std::sync::Arc;

/// Bound of the producer→consumer channel: deep enough that the search is
/// not lock-stepped with the consumer, shallow enough that an abandoned
/// stream holds O(1) tuples, not the answer set.
pub const STREAM_CHANNEL_CAPACITY: usize = 64;

/// The producer-side sink: dedupes (so the stream yields distinct tuples
/// and the duplicate-projection prune keeps working) and forwards each
/// fresh tuple into the channel. A failed send means the consumer is gone
/// — the sink closes and stops the search.
struct StreamSink {
    seen: FxHashSet<Vec<NodeId>>,
    tx: SyncSender<Vec<NodeId>>,
    closed: bool,
}

impl TupleSink for StreamSink {
    fn contains_tuple(&self, t: &[NodeId]) -> bool {
        self.seen.contains(t)
    }

    fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus {
        if self.closed {
            return SinkStatus::Stop;
        }
        if !self.seen.insert(t.clone()) {
            return SinkStatus::Continue;
        }
        if self.tx.send(t).is_err() {
            self.closed = true;
            return SinkStatus::Stop;
        }
        SinkStatus::Continue
    }

    fn should_stop(&self) -> bool {
        self.closed
    }
}

/// A pull-based iterator over distinct answer tuples, backed by a producer
/// thread (see the module docs). Obtained from [`eval_stream`] /
/// [`eval_stream_with`] / [`eval_stream_parallel`].
pub struct TupleStream {
    rx: Option<Receiver<Vec<NodeId>>>,
    handle: Option<JoinHandle<()>>,
}

impl TupleStream {
    fn spawn(producer: impl FnOnce(SyncSender<Vec<NodeId>>) + Send + 'static) -> Self {
        let (tx, rx) = sync_channel(STREAM_CHANNEL_CAPACITY);
        let handle = thread::spawn(move || producer(tx));
        TupleStream {
            rx: Some(rx),
            handle: Some(handle),
        }
    }

    /// Joins the finished producer, re-raising its panic (if any) on the
    /// consumer thread — unless the consumer is already unwinding, where a
    /// double panic would abort.
    fn join_producer(&mut self) {
        if let Some(handle) = self.handle.take() {
            if let Err(payload) = handle.join() {
                if !thread::panicking() {
                    std::panic::resume_unwind(payload);
                }
            }
        }
    }
}

impl Iterator for TupleStream {
    type Item = Vec<NodeId>;

    fn next(&mut self) -> Option<Vec<NodeId>> {
        match self.rx.as_ref()?.recv() {
            Ok(t) => Some(t),
            Err(_) => {
                // Producer finished (or died): surface its panic now
                // rather than at drop, so `for t in stream` can't silently
                // observe a truncated answer set.
                self.rx = None;
                self.join_producer();
                None
            }
        }
    }
}

impl Drop for TupleStream {
    fn drop(&mut self) {
        // Close the channel first: the producer's next send fails, its
        // sink stops the search, and the join below cannot deadlock.
        self.rx = None;
        self.join_producer();
    }
}

/// Streaming [`crate::eval_tuples`]: yields distinct answer tuples as the
/// (sequential) join search finds them. The graph is shared with the
/// producer thread via `Arc`, the query is cloned.
pub fn eval_stream<G: GraphView + Send + Sync + 'static>(
    q: &Crpq,
    g: &Arc<G>,
    sem: Semantics,
) -> TupleStream {
    eval_stream_with(q, g, sem, EvalStrategy::Join)
}

/// [`eval_stream`] under a forced [`EvalStrategy`] — the differential-test
/// entry point. `Enumerate` streams the materialised oracle result (no
/// early yield; it exists so stream-vs-oracle tests cover the same
/// surface), the join strategies yield mid-search.
pub fn eval_stream_with<G: GraphView + Send + Sync + 'static>(
    q: &Crpq,
    g: &Arc<G>,
    sem: Semantics,
    strategy: EvalStrategy,
) -> TupleStream {
    let q = q.clone();
    let g = Arc::clone(g);
    let mode = match strategy {
        EvalStrategy::Join => JoinMode::Auto,
        EvalStrategy::BinaryJoin => JoinMode::Binary,
        EvalStrategy::Wcoj => JoinMode::Wcoj,
        EvalStrategy::Enumerate => {
            return TupleStream::spawn(move |tx| {
                for t in eval_tuples_enumerate(&q, &*g, sem) {
                    if tx.send(t).is_err() {
                        break;
                    }
                }
            });
        }
    };
    TupleStream::spawn(move |tx| {
        let mut catalog = RelationCatalog::new(&*g);
        let mut sink = StreamSink {
            seen: FxHashSet::default(),
            tx,
            closed: false,
        };
        eval_sink_join(&q, &*g, sem, false, &mut catalog, mode, &mut sink);
    })
}

/// Streaming [`crate::eval_tuples_parallel`]: the producer runs the
/// work-stealing scheduler, every worker feeding the one channel-backed
/// sink; dropping the stream cancels the whole fleet. Tuple arrival order
/// is scheduling-dependent (the collected set is not).
pub fn eval_stream_parallel<G: GraphView + Send + Sync + 'static>(
    q: &Crpq,
    g: &Arc<G>,
    sem: Semantics,
    threads: usize,
) -> TupleStream {
    let q = q.clone();
    let g = Arc::clone(g);
    TupleStream::spawn(move |tx| {
        let sink = StreamSink {
            seen: FxHashSet::default(),
            tx,
            closed: false,
        };
        eval_parallel_sink(&q, &*g, sem, threads, sink);
    })
}

#[cfg(all(test, crpq_model_check))]
mod model_tests {
    //! Model-checked protocol tests for the stream producer/consumer
    //! contract (invariant I5 of `CONCURRENCY.md`). Run with:
    //!
    //! ```text
    //! RUSTFLAGS="--cfg crpq_model_check" cargo test -p crpq-core --lib model_
    //! ```

    use super::*;
    use crpq_check::{explore, try_explore, Config, Failure};
    use crpq_graph::generators;
    use crpq_query::parse_crpq;

    /// I5 — dropping a stream never deadlocks the producer: on every
    /// explored interleaving of consumer drop vs. producer send, `Drop`
    /// closes the channel first, the producer's pending/next send fails,
    /// the sink stops the search, and the join returns.
    #[test]
    fn model_stream_drop_never_deadlocks_producer() {
        let mut g = generators::labelled_path(4, &["a"]);
        let q = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        let g = Arc::new(g);
        let run = || {
            let mut stream = eval_stream(&q, &g, Semantics::Standard);
            assert!(stream.next().is_some(), "path graph has answers");
            drop(stream);
        };
        let report = explore(&Config::exhaustive(1_000), run);
        assert_eq!(report.truncated, 0, "runs must fit the step budget");
        // Seeded-random pass for deep interleavings of the mid-search
        // drop (the DFS frontier only deviates early in the run).
        let deep = explore(&Config::random(0x51EA_D12, 200), run);
        assert_eq!(deep.schedules, 200);
    }

    /// I5, parallel flavour: dropping the parallel stream cancels the
    /// whole work-stealing fleet through the one shared sink — producer
    /// and both workers exit on every schedule.
    #[test]
    fn model_stream_parallel_drop_cancels_fleet() {
        let mut g = generators::labelled_path(4, &["a"]);
        let q = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        let g = Arc::new(g);
        let run = || {
            let mut stream = eval_stream_parallel(&q, &g, Semantics::Standard, 2);
            assert!(stream.next().is_some(), "path graph has answers");
            drop(stream);
        };
        let report = explore(&Config::exhaustive(1_000), run);
        assert_eq!(report.truncated, 0, "runs must fit the step budget");
        let deep = explore(&Config::random(0xF1EE7, 200), run);
        assert_eq!(deep.schedules, 200);
    }

    /// Backpressure protocol, driven directly: a producer pushing through
    /// a capacity-1 `StreamSink` channel blocks once the buffer is full;
    /// the consumer taking one tuple and hanging up must — on every
    /// interleaving — fail the producer's next send, flip the sink to
    /// `closed`, and let it exit.
    #[test]
    fn model_backpressure_hangup_unblocks_producer() {
        let report = explore(&Config::exhaustive(5_000), || {
            let (tx, rx) = sync_channel::<Vec<NodeId>>(1);
            let producer = thread::spawn(move || {
                let mut sink = StreamSink {
                    seen: FxHashSet::default(),
                    tx,
                    closed: false,
                };
                for i in 0..4u32 {
                    if sink.insert_tuple(vec![NodeId(i)]) == SinkStatus::Stop {
                        break;
                    }
                }
                assert!(sink.closed, "hangup must close the sink");
                assert!(sink.should_stop(), "closed sink must stop the search");
            });
            assert_eq!(rx.recv().unwrap(), vec![NodeId(0)], "FIFO order");
            drop(rx);
            producer.join().unwrap();
        });
        assert!(report.exhausted, "direct protocol must be fully explored");
    }

    /// Mutant: joining the producer while the receiver is still open.
    /// With the channel full the producer is parked in `send` and the
    /// consumer in `join` — the checker must report the deadlock. This
    /// pins the ordering contract of `TupleStream::drop` (`rx = None`
    /// BEFORE `join_producer`).
    #[test]
    fn model_mutant_join_before_close_is_caught() {
        let failure = try_explore(&Config::exhaustive(2_000), || {
            let (tx, rx) = sync_channel::<Vec<NodeId>>(1);
            let producer = thread::spawn(move || {
                for i in 0..3u32 {
                    if tx.send(vec![NodeId(i)]).is_err() {
                        return;
                    }
                }
            });
            // MUTANT ordering: join first, hang up after.
            producer.join().unwrap();
            drop(rx);
        })
        .expect_err("join-before-close must strand the producer");
        assert!(
            matches!(failure, Failure::Deadlock { .. }),
            "wrong failure class: {failure}"
        );
    }
}
