//! Remark 2.1: the semantics hierarchy
//! `Q(G)_q-inj ⊆ Q(G)_a-inj ⊆ Q(G)_st`.
//!
//! [`check_hierarchy`] verifies both inclusions on a concrete `(Q, G)` pair
//! and reports the result-set sizes — the basis of experiment E3 (hierarchy
//! & selectivity).

use crate::eval::{eval_tuples, Semantics};
use crpq_graph::{GraphDb, NodeId};
use crpq_query::Crpq;

/// Result-set sizes per semantics plus inclusion verdicts.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyReport {
    /// `|Q(G)_st|`.
    pub standard: usize,
    /// `|Q(G)_a-inj|`.
    pub atom_injective: usize,
    /// `|Q(G)_q-inj|`.
    pub query_injective: usize,
    /// Tuples violating `q-inj ⊆ a-inj` (must be empty).
    pub qinj_not_ainj: Vec<Vec<NodeId>>,
    /// Tuples violating `a-inj ⊆ st` (must be empty).
    pub ainj_not_st: Vec<Vec<NodeId>>,
}

impl HierarchyReport {
    /// Whether Remark 2.1 holds on this instance.
    pub fn holds(&self) -> bool {
        self.qinj_not_ainj.is_empty() && self.ainj_not_st.is_empty()
    }

    /// Whether the three semantics are *separated* on this instance
    /// (all three result sets pairwise different).
    pub fn fully_separated(&self) -> bool {
        self.query_injective < self.atom_injective && self.atom_injective < self.standard
    }
}

/// Evaluates `Q` on `G` under all three semantics and checks Remark 2.1.
pub fn check_hierarchy(q: &Crpq, g: &GraphDb) -> HierarchyReport {
    let st = eval_tuples(q, g, Semantics::Standard);
    let ai = eval_tuples(q, g, Semantics::AtomInjective);
    let qi = eval_tuples(q, g, Semantics::QueryInjective);
    let qinj_not_ainj = qi.iter().filter(|t| !ai.contains(t)).cloned().collect();
    let ainj_not_st = ai.iter().filter(|t| !st.contains(t)).cloned().collect();
    HierarchyReport {
        standard: st.len(),
        atom_injective: ai.len(),
        query_injective: qi.len(),
        qinj_not_ainj,
        ainj_not_st,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_graph::generators;
    use crpq_query::parse_crpq;

    #[test]
    fn hierarchy_on_random_graphs() {
        for seed in 0..5 {
            let mut g = generators::random_graph(8, 20, &["a", "b", "c"], seed);
            let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
            let report = check_hierarchy(&q, &g);
            assert!(
                report.holds(),
                "hierarchy violated on seed {seed}: {report:?}"
            );
        }
    }

    #[test]
    fn separation_instance() {
        // A graph separating all three semantics for the Example 2.1 query:
        // combine the a-inj/q-inj separator with the st/a-inj separator.
        let mut b = crpq_graph::GraphBuilder::new();
        // gadget 1 (a-inj ≠ q-inj): u a v b w, w c v, v c u
        b.edge("u", "a", "v");
        b.edge("v", "b", "w");
        b.edge("w", "c", "v");
        b.edge("v", "c", "u");
        // gadget 2 (st ≠ a-inj): u' a w', w' b t', t' a u', u' b v', v' c u'
        b.edge("u2", "a", "w2");
        b.edge("w2", "b", "t2");
        b.edge("t2", "a", "u2");
        b.edge("u2", "b", "v2");
        b.edge("v2", "c", "u2");
        let mut g = b.finish();
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
        let report = check_hierarchy(&q, &g);
        assert!(report.holds());
        assert!(report.fully_separated(), "{report:?}");
    }
}
