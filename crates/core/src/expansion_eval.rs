//! Characterisation-based evaluation (Prop 2.2, Prop 2.3, Cor 4.5).
//!
//! `v̄ ∈ Q(G)_st` iff some `E ∈ Exp(Q)` has `E → (G, v̄)`;
//! `v̄ ∈ Q(G)_q-inj` iff some `E` has `E -inj-> (G, v̄)`;
//! `v̄ ∈ Q(G)_a-inj` iff some `E` has `E -a-inj-> (G, v̄)`
//! (equivalently, Cor 4.5: some `F ∈ Exp_a-inj(Q)` with `F -inj-> (G, v̄)`).
//!
//! This engine searches expansions within explicit word-length bounds; it is
//! **complete** whenever the bound covers all relevant witnesses:
//!
//! * every injective witness path has at most `|V(G)|` nodes, so
//!   `max_word_len = |V(G)|` is complete for both injective semantics;
//! * a standard-semantics witness can be pumped down below
//!   `|V(G)| · |states|` in the product automaton, so that bound is complete
//!   for `st`.
//!
//! [`complete_limits`] computes those bounds; the engine then returns a
//! definite answer. With smaller bounds the result may be
//! [`EvalOutcome::Unknown`]. Used as the cross-check oracle for the direct
//! evaluator in [`crate::eval`].

use crate::eval::Semantics;
use crpq_graph::{GraphDb, NodeId};
use crpq_query::expansion::{enumerate_expansions, ExpansionLimits};
use crpq_query::hom::{hom_exists, pin_free_tuple};
use crpq_query::{Crpq, DistinctSpec};
use std::ops::ControlFlow;

/// Three-valued evaluation result.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EvalOutcome {
    /// Membership established (a witnessing expansion + homomorphism found).
    True,
    /// Non-membership established (enumeration was exhaustive).
    False,
    /// The bounded enumeration found nothing but was not exhaustive.
    Unknown,
}

impl EvalOutcome {
    /// Collapses to `Option<bool>`.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            EvalOutcome::True => Some(true),
            EvalOutcome::False => Some(false),
            EvalOutcome::Unknown => None,
        }
    }
}

/// Limits making the expansion search complete on `(q, g)` for `sem`.
pub fn complete_limits(q: &Crpq, g: &GraphDb, sem: Semantics) -> ExpansionLimits {
    let n = g.num_nodes().max(1);
    let max_word_len = match sem {
        Semantics::Standard => {
            let states: usize = q
                .atoms
                .iter()
                .map(|a| a.nfa().num_states())
                .max()
                .unwrap_or(1);
            n * states
        }
        // Injective witnesses visit each node at most once: a simple path
        // has ≤ n nodes hence ≤ n-1 edges; a simple cycle ≤ n edges.
        Semantics::AtomInjective | Semantics::QueryInjective => n,
    };
    ExpansionLimits {
        max_word_len,
        max_expansions: usize::MAX,
    }
}

/// Evaluates `tuple ∈ Q(G)_sem` by expansion search within `limits`.
pub fn eval_contains_via_expansions(
    q: &Crpq,
    g: &GraphDb,
    tuple: &[NodeId],
    sem: Semantics,
    limits: ExpansionLimits,
) -> EvalOutcome {
    assert_eq!(
        q.free.len(),
        tuple.len(),
        "tuple arity must match free tuple"
    );
    let mut witnessed = false;
    let outcome = enumerate_expansions(q, limits, |exp| {
        let Some(pre) = pin_free_tuple(&exp.cq, tuple) else {
            return ControlFlow::Continue(());
        };
        let distinct = match sem {
            Semantics::Standard => DistinctSpec::None,
            Semantics::QueryInjective => DistinctSpec::AllPairs,
            Semantics::AtomInjective => DistinctSpec::Pairs(exp.atom_related_pairs()),
        };
        if hom_exists(&exp.cq, g, &pre, &distinct) {
            witnessed = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    if witnessed {
        EvalOutcome::True
    } else if outcome.complete {
        EvalOutcome::False
    } else {
        EvalOutcome::Unknown
    }
}

/// Complete expansion-based evaluation (uses [`complete_limits`]).
///
/// With the pumping bounds of [`complete_limits`], *no witness is lost*:
/// even when `Exp(Q)` is infinite (so the enumeration itself cannot be
/// exhaustive), any membership witness has an expansion within the bound.
/// Hence `Unknown` from the bounded search means definite non-membership.
pub fn eval_contains_complete(q: &Crpq, g: &GraphDb, tuple: &[NodeId], sem: Semantics) -> bool {
    matches!(
        eval_contains_via_expansions(q, g, tuple, sem, complete_limits(q, g, sem)),
        EvalOutcome::True
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_contains, Semantics};
    use crpq_graph::GraphBuilder;
    use crpq_query::parse_crpq;

    fn graph(edges: &[(&str, &str, &str)]) -> GraphDb {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        b.finish()
    }

    #[test]
    fn agrees_with_direct_engine_on_example21() {
        let mut g = graph(&[
            ("u", "a", "v"),
            ("v", "b", "w"),
            ("w", "c", "v"),
            ("v", "c", "u"),
        ]);
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            for n1 in g.nodes() {
                for n2 in g.nodes() {
                    let direct = eval_contains(&q, &g, &[n1, n2], sem);
                    let via_exp = eval_contains_complete(&q, &g, &[n1, n2], sem);
                    assert_eq!(
                        direct, via_exp,
                        "disagreement at ({n1:?},{n2:?}) under {sem}"
                    );
                }
            }
        }
    }

    #[test]
    fn unknown_on_insufficient_bounds() {
        // (ab)^3 needed, but bound is 2.
        let mut g = graph(&[
            ("n0", "a", "n1"),
            ("n1", "b", "n2"),
            ("n2", "a", "n3"),
            ("n3", "b", "n4"),
            ("n4", "a", "n5"),
            ("n5", "b", "n6"),
        ]);
        let q = parse_crpq("x -[(a b)^+]-> y", g.alphabet_mut()).unwrap();
        let out = eval_contains_via_expansions(
            &q,
            &g,
            &[],
            Semantics::Standard,
            ExpansionLimits {
                max_word_len: 2,
                max_expansions: 1000,
            },
        );
        // Within bound 2 the word ab IS found (n0..n2), so membership holds.
        assert_eq!(out, EvalOutcome::True);
        // A query needing exactly length 6:
        let q6 = parse_crpq("x -[a b a b a b (a b)*]-> y", g.alphabet_mut()).unwrap();
        let out = eval_contains_via_expansions(
            &q6,
            &g,
            &[],
            Semantics::Standard,
            ExpansionLimits {
                max_word_len: 2,
                max_expansions: 1000,
            },
        );
        assert_eq!(out, EvalOutcome::Unknown);
        let out = eval_contains_via_expansions(
            &q6,
            &g,
            &[],
            Semantics::Standard,
            complete_limits(&q6, &g, Semantics::Standard),
        );
        assert_eq!(out, EvalOutcome::True);
    }

    #[test]
    fn subgraph_isomorphism_via_qinj() {
        // Prop 3.1 flavour: a triangle query maps q-injectively into a
        // triangle but not into a 6-cycle (which has a hom but no injective
        // short cycle image… actually a 3-cycle query needs a triangle).
        let mut tri = graph(&[("a1", "e", "a2"), ("a2", "e", "a3"), ("a3", "e", "a1")]);
        let q = parse_crpq("x -[e]-> y, y -[e]-> z, z -[e]-> x", tri.alphabet_mut()).unwrap();
        assert!(eval_contains_complete(
            &q,
            &tri,
            &[],
            Semantics::QueryInjective
        ));
        let mut hex = graph(&[
            ("b1", "e", "b2"),
            ("b2", "e", "b3"),
            ("b3", "e", "b4"),
            ("b4", "e", "b5"),
            ("b5", "e", "b6"),
            ("b6", "e", "b1"),
        ]);
        let q2 = parse_crpq("x -[e]-> y, y -[e]-> z, z -[e]-> x", hex.alphabet_mut()).unwrap();
        assert!(!eval_contains_complete(
            &q2,
            &hex,
            &[],
            Semantics::QueryInjective
        ));
        assert!(
            !eval_contains_complete(&q2, &hex, &[], Semantics::Standard),
            "6-cycle has no 3-cycle hom image (odd wrap impossible)"
        );
    }

    #[test]
    fn a_inj_distinct_pairs_only_within_atoms() {
        // §1 intro example: on a pure b-path the two atoms can share their
        // paths under a-inj but not q-inj.
        let mut g = graph(&[("n0", "b", "n1"), ("n1", "b", "n2")]);
        let q = parse_crpq(
            "x -[(a+b)(a+b)*]-> y, x -[(b+c)(b+c)*]-> z",
            g.alphabet_mut(),
        )
        .unwrap();
        assert!(eval_contains_complete(
            &q,
            &g,
            &[],
            Semantics::AtomInjective
        ));
        assert!(!eval_contains_complete(
            &q,
            &g,
            &[],
            Semantics::QueryInjective
        ));
    }
}
