//! Parallel evaluation helpers.
//!
//! The join-based engine ([`crate::eval`]) leaves an embarrassingly
//! parallel outer loop: after semi-join pruning, the candidates of the
//! first (most selective) join variable partition the search space. Each
//! worker claims candidates from an atomic cursor, runs the shared
//! immutable [`JoinPlan`] with that variable pre-assigned, and merges its
//! local result set at the end — far better work granularity than the old
//! `|V|^arity` tuple-space sweep, which spent most of its time rejecting
//! tuples the pruned domains rule out up front.

use crate::eval::{eval_contains, JoinPlan, Semantics};
use crpq_graph::{GraphDb, NodeId};
use crpq_query::Crpq;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parallel version of [`crate::eval::eval_tuples`].
///
/// `threads = 0` means one thread per available CPU (capped at 16).
pub fn eval_tuples_parallel(
    q: &Crpq,
    g: &GraphDb,
    sem: Semantics,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get().min(16))
    } else {
        threads
    };
    if q.free.is_empty() {
        return if eval_contains(q, g, &[], sem) {
            vec![Vec::new()]
        } else {
            Vec::new()
        };
    }

    let variants = q.epsilon_free_union();
    let mut out: BTreeSet<Vec<NodeId>> = BTreeSet::new();
    for variant in &variants {
        let plan = JoinPlan::build(variant, g, sem, false);
        if plan.is_empty() {
            continue;
        }
        match plan.split_candidates() {
            None => {
                // Variable-free variant: nothing to partition.
                plan.search_all(&mut out);
            }
            Some((_, cands)) if cands.len() <= 1 || threads <= 1 => {
                // Too little work to fan out.
                plan.search_all(&mut out);
            }
            Some((var, cands)) => {
                let next = AtomicUsize::new(0);
                let merged: Mutex<BTreeSet<Vec<NodeId>>> = Mutex::new(BTreeSet::new());
                std::thread::scope(|scope| {
                    for _ in 0..threads.min(cands.len()) {
                        scope.spawn(|| {
                            let mut local: BTreeSet<Vec<NodeId>> = BTreeSet::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(&node) = cands.get(i) else { break };
                                plan.search_with_fixed(var, node, &mut local);
                            }
                            if !local.is_empty() {
                                merged.lock().unwrap().extend(local);
                            }
                        });
                    }
                });
                out.extend(merged.into_inner().unwrap());
            }
        }
    }
    out.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_tuples;
    use crpq_graph::generators;
    use crpq_query::parse_crpq;

    #[test]
    fn parallel_matches_sequential() {
        let mut g = generators::random_graph(7, 18, &["a", "b", "c"], 11);
        let q = parse_crpq(
            "(x, y) <- x -[(a+b)(a+b)*]-> y, y -[c*]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 4);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_existentials() {
        let mut g = generators::random_graph(9, 26, &["a", "b"], 3);
        let q = parse_crpq("(y) <- x -[a a*]-> y, y -[b]-> z", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 3);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn boolean_parallel() {
        let mut g = generators::labelled_path(4, &["a"]);
        let q = parse_crpq("x -[a a]-> y", g.alphabet_mut()).unwrap();
        let res = eval_tuples_parallel(&q, &g, Semantics::Standard, 2);
        assert_eq!(res, vec![Vec::new()]);
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let mut g = generators::labelled_cycle(5, &["a", "b"]);
        let q = parse_crpq("(x, y) <- x -[(a+b)(a+b)*]-> y", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            assert_eq!(
                eval_tuples(&q, &g, sem),
                eval_tuples_parallel(&q, &g, sem, 1),
                "mismatch under {sem}"
            );
        }
    }
}
