//! Parallel evaluation helpers.
//!
//! Two layers of the planner/executor pipeline parallelise independently:
//!
//! * **Materialisation** — the shared [`RelationCatalog`] is built with
//!   `threads` workers, so each distinct atom relation's per-source BFS
//!   sweeps are partitioned across scoped threads
//!   ([`crpq_graph::rpq::rpq_relation_parallel`]); the catalog also means
//!   a relation shared by several ε-free variants is materialised once.
//! * **Join search** — after semi-join pruning, the candidates of the
//!   first (most selective) join variable seed a shared chunk queue, and
//!   workers run the immutable [`JoinPlan`] with a per-worker
//!   verification scratch and local result set, merged at the end.
//!
//! # Work stealing
//!
//! A static split of the top-level candidate range starves on skewed
//! domains: under a Zipf label distribution one candidate's subtree can
//! hold almost all of the search space, leaving every other worker idle
//! while one crawls it. [`eval_tuples_parallel`] therefore schedules by
//! **work stealing over subtree ranges**:
//!
//! * A [`Chunk`] is a contiguous range of one level's candidates plus the
//!   partial assignment above it. The queue is seeded with one top-level
//!   range per worker; drained workers block on a condvar until a chunk
//!   is donated or every worker is idle (global quiescence).
//! * Workers enumerate the first [`STEAL_DEPTH`] join levels
//!   **explicitly** (via [`JoinPlan::choose_branch`] /
//!   [`wcoj::level_candidates`], so a stolen subtree branches exactly
//!   like the sequential executor), and hand deeper subtrees to the
//!   sequential engines ([`JoinPlan::search_from`] /
//!   [`wcoj::search_from_level`]).
//! * **Split invariant**: every explicitly enumerated level re-checks for
//!   starving siblings before each candidate, and donates the upper half
//!   of *its own* remaining range. Because the innermost level iterates
//!   most often, the *deepest large* remaining domain is what a starving
//!   worker receives — not merely a slice of the top-level split — so
//!   skewed subtrees keep splitting until all cores are busy.
//!
//! The intact panic-propagation contract of [`collect_worker_results`] is
//! preserved: a panicking worker's [`ActiveGuard`] releases the
//! quiescence count on unwind, so starving siblings wake and exit instead
//! of deadlocking on the condvar, and the original payload reaches the
//! caller. The previous static-partitioning scheduler is kept as
//! [`eval_tuples_parallel_static`] — it is the baseline the
//! work-stealing speedup is benchmarked against.
//!
//! # Streaming and cancellation
//!
//! The early-exit entry points ([`eval_ask_parallel`],
//! [`eval_limit_parallel`] and the parallel stream of [`crate::stream`])
//! share one **global sink** behind a mutex; each worker wraps it in a
//! [`WorkerSink`] that filters through a local seen-set first (so the
//! duplicate-projection prune stays lock-free) and forwards fresh tuples
//! under the lock. The moment the global sink answers
//! [`SinkStatus::Stop`], the worker raises the [`StealCtx`] **cancel
//! flag**; every other worker observes it through `should_stop` — checked
//! at search-node entry by the sequential engines and per candidate by
//! [`enumerate_range`] — and [`next_chunk`] drains the queue, so the run
//! reaches quiescence promptly. Overshoot is bounded: past the flag, a
//! worker can at most finish the candidate it was already verifying (one
//! late insert each), and the global [`crate::eval::LimitSink`] refuses
//! inserts beyond its limit, so the answer set never exceeds `k`. The
//! full-materialisation path keeps its per-worker local sets merged after
//! quiescence — no shared sink, no cancellation, byte-identical results.

use crate::eval::{
    eval_contains, plan_variant, sorted_tuples, JoinMode, JoinPlan, LimitSink, RelationCatalog,
    Semantics, SinkStatus, TupleSink, VariantPlan, VerifyScratch,
};
use crate::wcoj;
use crpq_graph::{rpq, GraphView, NodeId};
use crpq_query::{Crpq, Var};
use crpq_util::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crpq_util::sync::{thread, Condvar, Mutex, MutexGuard};
use crpq_util::FxHashSet;
use std::sync::Arc;

/// Number of join levels workers enumerate explicitly (and can therefore
/// donate from) before handing the subtree to the sequential executors.
/// Deep enough that a skewed top candidate's subtree still splits into
/// many stealable ranges, shallow enough that the per-level candidate
/// materialisation stays negligible against the subtree work below it.
const STEAL_DEPTH: usize = 3;

/// Parallel version of [`crate::eval::eval_tuples`], scheduled by work
/// stealing (see the module docs for the split invariant).
///
/// `threads = 0` means one thread per available CPU (capped at 16).
pub fn eval_tuples_parallel<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    eval_tuples_parallel_impl(q, g, sem, threads, true)
}

/// [`eval_tuples_parallel`] with the pre-work-stealing scheduler: the
/// top-level candidates are claimed from a single atomic cursor and each
/// subtree runs to completion on the worker that claimed it. Kept
/// addressable as the baseline for the work-stealing-vs-static bench
/// comparison; on skewed domains it degenerates to one busy worker.
pub fn eval_tuples_parallel_static<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    eval_tuples_parallel_impl(q, g, sem, threads, false)
}

fn eval_tuples_parallel_impl<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    threads: usize,
    work_stealing: bool,
) -> Vec<Vec<NodeId>> {
    let threads = rpq::effective_threads(threads);
    if q.free.is_empty() {
        return if eval_contains(q, g, &[], sem) {
            vec![Vec::new()]
        } else {
            Vec::new()
        };
    }

    let variants = q.epsilon_free_union();
    // Planning phase: one shared catalog, parallel materialisation.
    let mut catalog = RelationCatalog::with_threads(g, threads);
    let plans: Vec<VariantPlan> = variants
        .iter()
        .map(|v| plan_variant(v, g, false, &mut catalog))
        .collect();
    let catalog = catalog; // frozen for the execution phase

    let mut out: FxHashSet<Vec<NodeId>> = FxHashSet::default();
    let mut seq_scratch = VerifyScratch::new();
    for (variant, vplan) in variants.iter().zip(plans) {
        let plan = JoinPlan::build(variant, g, sem, vplan, &catalog);
        if plan.is_empty() {
            continue;
        }
        match plan.split_candidates() {
            None => {
                // Variable-free variant: nothing to partition.
                plan.search_all(&mut seq_scratch, &mut out);
            }
            Some((_, cands)) if cands.len() <= 1 || threads <= 1 => {
                // Too little work to fan out.
                plan.search_all(&mut seq_scratch, &mut out);
            }
            Some((var, cands)) => {
                // The WCOJ elimination order depends only on (plan, var):
                // compute it once here, not per candidate in the workers.
                let wcoj_order = plan
                    .use_wcoj(JoinMode::Auto)
                    .then(|| wcoj::fixed_order(&plan, var));
                let locals = if work_stealing {
                    run_work_stealing(&plan, wcoj_order.as_deref(), var, cands, threads)
                } else {
                    run_static(&plan, wcoj_order.as_deref(), var, cands, threads)
                };
                for local in locals {
                    out.extend(local);
                }
            }
        }
    }
    sorted_tuples(out)
}

/// The static baseline scheduler: top-level candidates off an atomic
/// cursor, one whole subtree per claim.
fn run_static<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    wcoj_order: Option<&[Var]>,
    var: Var,
    cands: Vec<NodeId>,
    threads: usize,
) -> Vec<FxHashSet<Vec<NodeId>>> {
    let next = AtomicUsize::new(0);
    collect_worker_results(threads.min(cands.len()), || {
        let mut local: FxHashSet<Vec<NodeId>> = FxHashSet::default();
        let mut scratch = VerifyScratch::new();
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&node) = cands.get(i) else { break };
            if let Some(order) = wcoj_order {
                wcoj::search_with_fixed(plan, order, node, &mut scratch, &mut local);
            } else {
                plan.search_with_fixed(var, node, &mut scratch, &mut local);
            }
        }
        local
    })
}

/// The work-stealing scheduler (see the module docs): seeds one top-level
/// range per worker, then lets drained workers receive donated subtree
/// ranges until global quiescence.
fn run_work_stealing<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    wcoj_order: Option<&[Var]>,
    var: Var,
    cands: Vec<NodeId>,
    threads: usize,
) -> Vec<FxHashSet<Vec<NodeId>>> {
    let cands = Arc::new(cands);
    let ctx = StealCtx::new();
    seed_chunks(&ctx, plan, var, &cands, threads);
    collect_worker_results(threads, || {
        let mut local: FxHashSet<Vec<NodeId>> = FxHashSet::default();
        let mut scratch = VerifyScratch::new();
        drain_chunks(&ctx, plan, wcoj_order, &mut scratch, &mut local);
        local
    })
}

/// The streaming variant of [`run_work_stealing`]: every worker feeds one
/// shared `global` sink through a [`WorkerSink`], so an early-exit sink
/// ([`LimitSink`], the stream sink) can stop the whole fleet via the
/// [`StealCtx`] cancel flag. Results land in `global`; per-worker local
/// sets are only the lock-free duplicate filter.
fn run_work_stealing_shared<G: GraphView, S: TupleSink + Send>(
    plan: &JoinPlan<'_, G>,
    wcoj_order: Option<&[Var]>,
    var: Var,
    cands: Vec<NodeId>,
    threads: usize,
    global: &Mutex<S>,
) {
    let cands = Arc::new(cands);
    let ctx = StealCtx::new();
    seed_chunks(&ctx, plan, var, &cands, threads);
    collect_worker_results(threads, || {
        let mut sink = WorkerSink {
            local: FxHashSet::default(),
            global,
            ctx: &ctx,
            post_cancel: 0,
        };
        let mut scratch = VerifyScratch::new();
        drain_chunks(&ctx, plan, wcoj_order, &mut scratch, &mut sink);
    });
}

/// Seeds the queue with one contiguous top-level range per worker. Uneven
/// subtree weights below these ranges are what donation redistributes.
fn seed_chunks<G: GraphView>(
    ctx: &StealCtx,
    plan: &JoinPlan<'_, G>,
    var: Var,
    cands: &Arc<Vec<NodeId>>,
    threads: usize,
) {
    let mut st = ctx.lock();
    let pieces = threads.min(cands.len()).max(1);
    let per = cands.len().div_ceil(pieces);
    let mut lo = 0;
    while lo < cands.len() {
        let hi = (lo + per).min(cands.len());
        st.queue.push(Chunk {
            assignment: vec![None; plan.q.num_vars],
            var,
            cands: Arc::clone(cands),
            lo,
            hi,
            depth: 0,
        });
        lo = hi;
    }
}

/// One worker's drain loop: claim chunks until global quiescence. If a
/// chunk's enumeration reports [`SinkStatus::Stop`], raises the cancel
/// flag so every sibling — including ones deep in the sequential engines,
/// which poll `should_stop` at search-node entry — winds down too.
fn drain_chunks<G: GraphView>(
    ctx: &StealCtx,
    plan: &JoinPlan<'_, G>,
    wcoj_order: Option<&[Var]>,
    scratch: &mut VerifyScratch,
    out: &mut dyn TupleSink,
) {
    while let Some(chunk) = next_chunk(ctx) {
        // `next_chunk` marked this worker active under the queue lock;
        // the guard releases it even on unwind, so a panicking worker
        // cannot leave starving siblings blocked on the condvar.
        let _guard = ActiveGuard(ctx);
        let Chunk {
            mut assignment,
            var,
            cands,
            lo,
            hi,
            depth,
        } = chunk;
        let status = enumerate_range(
            ctx,
            plan,
            wcoj_order,
            var,
            &cands,
            lo,
            hi,
            depth,
            &mut assignment,
            scratch,
            out,
        );
        if status == SinkStatus::Stop {
            ctx.cancel();
        }
    }
}

/// One stealable unit of join search: the candidates `cands[lo..hi]` of
/// `var` at explicit level `depth`, under the partial `assignment` bound
/// above it.
struct Chunk {
    assignment: Vec<Option<NodeId>>,
    var: Var,
    cands: Arc<Vec<NodeId>>,
    lo: usize,
    hi: usize,
    depth: usize,
}

/// The shared scheduler state of one plan's work-stealing run.
struct StealState {
    queue: Vec<Chunk>,
    /// Workers currently processing a chunk. Quiescence — and thus worker
    /// shutdown — is `queue.is_empty() && active == 0`: an active worker
    /// may still donate, so an empty queue alone proves nothing.
    active: usize,
}

struct StealCtx {
    state: Mutex<StealState>,
    cv: Condvar,
    /// Workers blocked in [`next_chunk`] waiting for a donation. Read
    /// (relaxed) by busy workers once per enumerated candidate — the
    /// donation trigger must be cheaper than the work it redistributes.
    starving: AtomicUsize,
    /// Raised when a shared early-exit sink answers [`SinkStatus::Stop`]:
    /// [`next_chunk`] drains the queue and [`WorkerSink::should_stop`]
    /// makes the sequential engines unwind, so the run reaches quiescence
    /// without finishing the search. Never set by full-materialisation
    /// runs (their sinks always continue).
    cancel: AtomicBool,
}

impl StealCtx {
    fn new() -> Self {
        Self {
            state: Mutex::new(StealState {
                queue: Vec::new(),
                active: 0,
            }),
            cv: Condvar::new(),
            starving: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
        }
    }

    #[inline]
    fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
        // Wake starving workers so they re-check promptly; the drained
        // queue plus falling `active` count then reads as quiescence.
        //
        // The notify must happen under the state lock (defect found by the
        // model checker, see CONCURRENCY.md invariant I2): a starving
        // worker that has already read `cancelled() == false` holds the
        // lock until `cv.wait` parks it and releases. Notifying without
        // the lock can land in that window — before the park — and the
        // wakeup is lost; the worker then sleeps until global quiescence
        // instead of observing the cancel promptly.
        let _st = self.lock();
        self.cv.notify_all();
    }

    /// Locks the scheduler state. Poisoning is survivable here — the
    /// critical sections below only move plain data, so a poisoned lock
    /// (sibling panicked while unwinding through a guard) is still
    /// consistent; `into_inner` keeps the shutdown path panic-free.
    fn lock(&self) -> MutexGuard<'_, StealState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn donate(&self, chunk: Chunk) {
        self.lock().queue.push(chunk);
        self.cv.notify_one();
    }

    #[inline]
    fn has_starving(&self) -> bool {
        self.starving.load(Ordering::Relaxed) > 0
    }
}

/// Decrements the active-worker count when dropped — **including on
/// unwind**. Without this, a panicking worker would freeze `active` above
/// zero and its starving siblings would wait on the condvar forever; the
/// panic would then never reach [`collect_worker_results`]' join, whose
/// contract is to re-raise the original payload.
struct ActiveGuard<'a>(&'a StealCtx);

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.0.lock();
        st.active -= 1;
        let idle = st.queue.is_empty() && st.active == 0;
        drop(st);
        if idle {
            // Global quiescence: wake every waiter so they observe it and
            // exit.
            self.0.cv.notify_all();
        }
    }
}

/// Pops the next chunk, blocking while other workers are active (they may
/// still donate). Returns `None` at global quiescence. The pop and the
/// `active` increment happen under one lock acquisition, so no sibling
/// can observe "queue empty, nobody active" while a chunk is in flight;
/// the caller must pair a `Some` result with an [`ActiveGuard`].
fn next_chunk(ctx: &StealCtx) -> Option<Chunk> {
    let mut st = ctx.lock();
    loop {
        if ctx.cancelled() {
            // Cancelled runs want quiescence, not answers: dropping all
            // queued subtrees is what lets the fleet wind down without
            // searching them.
            st.queue.clear();
        }
        if let Some(chunk) = st.queue.pop() {
            st.active += 1;
            return Some(chunk);
        }
        if st.active == 0 {
            return None;
        }
        ctx.starving.fetch_add(1, Ordering::Relaxed);
        st = ctx
            .cv
            .wait(st)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        ctx.starving.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Enumerates `cands[lo..hi]` of `var` at explicit level `depth`,
/// descending below each candidate. Before each candidate, donates the
/// upper half of the remaining range if a sibling is starving — this
/// check runs at *every* explicit level, and the innermost level iterates
/// most often, so the deepest large domain donates first (the split
/// invariant of the module docs). Candidates that already violate
/// injectivity under the partial assignment are pruned via
/// [`JoinPlan::bind_allowed`] before their subtree is descended, mirroring
/// the sequential engines; the sink's stop signal is polled once per
/// candidate, which bounds a worker's overshoot to the subtree it had
/// already entered.
fn enumerate_range<G: GraphView>(
    ctx: &StealCtx,
    plan: &JoinPlan<'_, G>,
    wcoj_order: Option<&[Var]>,
    var: Var,
    cands: &Arc<Vec<NodeId>>,
    mut lo: usize,
    mut hi: usize,
    depth: usize,
    assignment: &mut Vec<Option<NodeId>>,
    scratch: &mut VerifyScratch,
    out: &mut dyn TupleSink,
) -> SinkStatus {
    while lo < hi {
        if out.should_stop() {
            return SinkStatus::Stop;
        }
        if hi - lo >= 2 && ctx.has_starving() {
            // Keep [lo, mid), donate [mid, hi) — both halves non-empty.
            let mid = (lo + hi).div_ceil(2);
            ctx.donate(Chunk {
                assignment: assignment.clone(),
                var,
                cands: Arc::clone(cands),
                lo: mid,
                hi,
                depth,
            });
            hi = mid;
        }
        let node = cands[lo];
        lo += 1;
        if !plan.bind_allowed(var, node, assignment, scratch) {
            continue;
        }
        assignment[var.index()] = Some(node);
        let status = descend(ctx, plan, wcoj_order, depth + 1, assignment, scratch, out);
        assignment[var.index()] = None;
        if status == SinkStatus::Stop {
            return SinkStatus::Stop;
        }
    }
    SinkStatus::Continue
}

/// One explicit join level of the work-stealing search: chooses the next
/// variable exactly as the sequential executor would, enumerates its
/// candidates as a stealable range, and past [`STEAL_DEPTH`] (or on a
/// complete assignment) hands the subtree to the sequential engines. The
/// sequential entry points re-run the duplicate-projection prune; the
/// explicit levels skip it, which only costs re-exploration — `out` is a
/// set, so results are unaffected.
fn descend<G: GraphView>(
    ctx: &StealCtx,
    plan: &JoinPlan<'_, G>,
    wcoj_order: Option<&[Var]>,
    depth: usize,
    assignment: &mut Vec<Option<NodeId>>,
    scratch: &mut VerifyScratch,
    out: &mut dyn TupleSink,
) -> SinkStatus {
    match wcoj_order {
        Some(order) => {
            // `depth` doubles as the elimination-order level here: the
            // seed chunks enumerate `order[0]`.
            if depth >= STEAL_DEPTH || depth >= order.len() {
                return wcoj::search_from_level(plan, order, depth, assignment, scratch, out);
            }
            let next = wcoj::level_candidates(plan, order, depth, assignment);
            if next.is_empty() {
                return SinkStatus::Continue;
            }
            let var = order[depth];
            let next = Arc::new(next);
            let hi = next.len();
            enumerate_range(
                ctx, plan, wcoj_order, var, &next, 0, hi, depth, assignment, scratch, out,
            )
        }
        None => {
            if depth >= STEAL_DEPTH {
                return plan.search_from(assignment, scratch, out);
            }
            match plan.choose_branch(assignment) {
                None => {
                    // Complete assignment: the sequential entry verifies
                    // and emits it.
                    plan.search_from(assignment, scratch, out)
                }
                Some((var, node_set)) => {
                    let next: Vec<NodeId> = node_set.iter().map(|n| NodeId(n as u32)).collect();
                    if next.is_empty() {
                        return SinkStatus::Continue;
                    }
                    let next = Arc::new(next);
                    let hi = next.len();
                    enumerate_range(
                        ctx, plan, wcoj_order, var, &next, 0, hi, depth, assignment, scratch, out,
                    )
                }
            }
        }
    }
}

/// One worker's view of a shared early-exit sink: duplicates are filtered
/// through a lock-free local seen-set (one worker never re-offers a tuple
/// it already forwarded), fresh tuples go to the `global` sink under its
/// mutex, and the scheduler's cancel flag doubles as `should_stop` so the
/// sequential engines unwind without finishing their subtree.
///
/// `contains_tuple` consults only the local set — cross-worker duplicate
/// subtrees are re-explored, exactly like the full-materialisation path's
/// per-worker local sets; the global sink dedupes on insert, so results
/// are unaffected.
struct WorkerSink<'a, S: TupleSink> {
    local: FxHashSet<Vec<NodeId>>,
    global: &'a Mutex<S>,
    ctx: &'a StealCtx,
    /// Inserts this worker abandoned because a sibling raised cancel while
    /// it was blocked on the sink mutex. Protocol invariant (pinned by the
    /// model checker, CONCURRENCY.md I3): at most one per worker, because
    /// the resulting `Stop` unwinds the worker out of its subtree.
    post_cancel: usize,
}

impl<S: TupleSink> TupleSink for WorkerSink<'_, S> {
    fn contains_tuple(&self, t: &[NodeId]) -> bool {
        self.local.contains(t)
    }

    fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus {
        if self.ctx.cancelled() {
            return SinkStatus::Stop;
        }
        if !self.local.insert(t.clone()) {
            return SinkStatus::Continue;
        }
        let mut global = lock_sink(self.global);
        if self.ctx.cancelled() {
            // Lost the stop race: cancel was raised while this worker was
            // blocked on the sink mutex. Suppress the insert — the sink
            // already said "enough" — so the global sink never sees a
            // post-stop tuple at all (the old code forwarded it and leaned
            // on the sink's own exact-k logic to drop it).
            self.post_cancel += 1;
            debug_assert!(
                self.post_cancel <= 1,
                "a worker lost the stop race twice: Stop must unwind the subtree"
            );
            return SinkStatus::Stop;
        }
        let status = global.insert_tuple(t);
        if status == SinkStatus::Stop {
            // Raise the flag here, not just when the Stop unwinds out of
            // the chunk: siblings deep in a sequential subtree poll
            // `should_stop` and wind down immediately. Raised while still
            // holding the sink mutex: the next worker to acquire it then
            // re-checks `cancelled` above and suppresses its insert, so
            // the global sink never observes a post-stop tuple (releasing
            // first would open a window where a sibling's insert lands
            // between the unlock and the flag store). `cancel` takes the
            // scheduler state lock; sink→state is the one cross-lock edge
            // in this module — never the reverse, so no cycle.
            self.ctx.cancel();
        }
        drop(global);
        status
    }

    fn should_stop(&self) -> bool {
        self.ctx.cancelled()
    }
}

/// Locks a shared sink, surviving poisoning for the same reason as
/// [`StealCtx::lock`]: sink state is plain data, and the panic itself is
/// re-raised by [`collect_worker_results`].
fn lock_sink<S: TupleSink>(m: &Mutex<S>) -> MutexGuard<'_, S> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Parallel evaluation into an arbitrary early-exit sink: the planning
/// phase (shared catalog, parallel materialisation) matches
/// [`eval_tuples_parallel`], but the execution phase feeds every variant's
/// answers into one shared `global` sink and stops — across variants and
/// across workers — the moment the sink says so. Returns the sink for the
/// caller to unwrap.
pub(crate) fn eval_parallel_sink<G: GraphView, S: TupleSink + Send>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    threads: usize,
    global: S,
) -> S {
    let threads = rpq::effective_threads(threads);
    let global = Mutex::new(global);
    if q.free.is_empty() {
        if eval_contains(q, g, &[], sem) {
            lock_sink(&global).insert_tuple(Vec::new());
        }
        return global
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
    }

    let variants = q.epsilon_free_union();
    let mut catalog = RelationCatalog::with_threads(g, threads);
    let plans: Vec<VariantPlan> = variants
        .iter()
        .map(|v| plan_variant(v, g, false, &mut catalog))
        .collect();
    let catalog = catalog; // frozen for the execution phase

    let mut seq_scratch = VerifyScratch::new();
    for (variant, vplan) in variants.iter().zip(plans) {
        if lock_sink(&global).should_stop() {
            break;
        }
        let plan = JoinPlan::build(variant, g, sem, vplan, &catalog);
        if plan.is_empty() {
            continue;
        }
        match plan.split_candidates() {
            None => {
                plan.search_all(&mut seq_scratch, &mut *lock_sink(&global));
            }
            Some((_, cands)) if cands.len() <= 1 || threads <= 1 => {
                plan.search_all(&mut seq_scratch, &mut *lock_sink(&global));
            }
            Some((var, cands)) => {
                let wcoj_order = plan
                    .use_wcoj(JoinMode::Auto)
                    .then(|| wcoj::fixed_order(&plan, var));
                run_work_stealing_shared(
                    &plan,
                    wcoj_order.as_deref(),
                    var,
                    cands,
                    threads,
                    &global,
                );
            }
        }
    }
    global
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Existence-only parallel evaluation: true iff the query has at least one
/// answer. All workers stand down at the first witness via the cancel
/// flag — on large graphs this returns in the time the search takes to
/// reach any single verified tuple.
pub fn eval_ask_parallel<G: GraphView>(q: &Crpq, g: &G, sem: Semantics, threads: usize) -> bool {
    !eval_parallel_sink(q, g, sem, threads, LimitSink::new(1)).is_empty()
}

/// Parallel `LIMIT k`: at most `k` distinct answer tuples, sorted. *Which*
/// k answers is scheduling-dependent (whatever the workers reached first);
/// the count contract is exact — the shared [`LimitSink`] refuses inserts
/// beyond `k` even while late workers finish their current candidate.
pub fn eval_limit_parallel<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    k: usize,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    if k == 0 {
        return Vec::new();
    }
    let sink = eval_parallel_sink(q, g, sem, threads, LimitSink::new(k));
    sorted_tuples(sink.into_tuples())
}

/// Runs `worker` on `threads` scoped threads and returns every worker's
/// result, in spawn order.
///
/// The per-worker results come back **through the join handles** — there
/// is deliberately no shared accumulator: the old `Mutex`-merged variant
/// meant a panicking worker poisoned the mutex, so its siblings died on a
/// confusing `PoisonError` and the *original* panic message was lost. Here
/// every handle is joined and the first panic payload is re-raised intact
/// via [`std::panic::resume_unwind`] (after all workers have finished —
/// scoped threads cannot outlive this call).
fn collect_worker_results<R: Send>(threads: usize, worker: impl Fn() -> R + Sync) -> Vec<R> {
    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.max(1)).map(|_| scope.spawn(&worker)).collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_tuples;
    use crpq_graph::generators;
    use crpq_query::parse_crpq;

    #[test]
    fn parallel_matches_sequential() {
        let mut g = generators::random_graph(7, 18, &["a", "b", "c"], 11);
        let q = parse_crpq(
            "(x, y) <- x -[(a+b)(a+b)*]-> y, y -[c*]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 4);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_existentials() {
        let mut g = generators::random_graph(9, 26, &["a", "b"], 3);
        let q = parse_crpq("(y) <- x -[a a*]-> y, y -[b]-> z", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 3);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn boolean_parallel() {
        let mut g = generators::labelled_path(4, &["a"]);
        let q = parse_crpq("x -[a a]-> y", g.alphabet_mut()).unwrap();
        let res = eval_tuples_parallel(&q, &g, Semantics::Standard, 2);
        assert_eq!(res, vec![Vec::new()]);
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        // Regression: a panicking worker used to poison the shared merge
        // mutex, so sibling workers (and the caller) surfaced a
        // `PoisonError` instead of the injected panic. The join-handle
        // merge must re-raise the original payload intact.
        let cursor = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            collect_worker_results(4, || {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i == 2 {
                    panic!("injected worker panic {i}");
                }
                i
            })
        });
        let payload = result.expect_err("worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload must be the original panic message");
        assert_eq!(message, "injected worker panic 2");
    }

    #[test]
    fn every_worker_result_is_collected() {
        // One result per worker, none lost or duplicated. (Which worker
        // drew which cursor value is scheduling-dependent, so spawn order
        // itself is unobservable from identical closures — this pins
        // completeness, not ordering.)
        let cursor = AtomicUsize::new(0);
        let mut results = collect_worker_results(3, || cursor.fetch_add(1, Ordering::Relaxed));
        results.sort_unstable();
        assert_eq!(results, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_matches_sequential_on_cyclic_shape() {
        // Cyclic (triangle) variants route workers through the WCOJ
        // executor — the partitioned result must still match the
        // sequential engine under every semantics.
        let mut g = generators::random_graph(10, 40, &["a", "b", "c"], 23);
        let q = parse_crpq(
            "(x, y, z) <- x -[a]-> y, y -[b]-> z, z -[c]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 4);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let mut g = generators::labelled_cycle(5, &["a", "b"]);
        let q = parse_crpq("(x, y) <- x -[(a+b)(a+b)*]-> y", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            assert_eq!(
                eval_tuples(&q, &g, sem),
                eval_tuples_parallel(&q, &g, sem, 1),
                "mismatch under {sem}"
            );
        }
    }

    #[test]
    fn work_stealing_matches_static_on_skewed_zipf_graph() {
        // The workload the scheduler exists for: Zipf-skewed labels give a
        // few candidates subtrees holding most of the search space. The
        // work-stealing result must match both the static scheduler and
        // the sequential engine under every semantics.
        let mut g = generators::zipf_label_graph(36, 150, 20, 1.2, 97);
        let q = parse_crpq(
            "(x, y) <- x -[l0 (l1+l2)*]-> y, y -[l2 (l3+l4)*]-> z",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let ws = eval_tuples_parallel(&q, &g, sem, 4);
            let st = eval_tuples_parallel_static(&q, &g, sem, 4);
            assert_eq!(seq, ws, "work-stealing mismatch under {sem}");
            assert_eq!(seq, st, "static mismatch under {sem}");
        }
    }

    #[test]
    fn work_stealing_matches_on_cyclic_shape() {
        // Cyclic shape → WCOJ executor → the explicit levels go through
        // `wcoj::level_candidates`, which must enumerate exactly what
        // `bind_level` would.
        let mut g = generators::random_graph(12, 60, &["a", "b", "c"], 41);
        let q = parse_crpq(
            "(x, z) <- x -[a+b]-> y, y -[b+c]-> z, z -[c a*]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let ws = eval_tuples_parallel(&q, &g, sem, 4);
            assert_eq!(seq, ws, "mismatch under {sem}");
        }
    }

    #[test]
    fn stealing_worker_panic_releases_starving_siblings() {
        // One chunk, three workers: the worker that claims it panics while
        // active. Its ActiveGuard must release the quiescence count during
        // unwind so the two starving siblings wake, observe quiescence and
        // exit — otherwise this test deadlocks on the condvar and the
        // panic never reaches the join handles.
        let ctx = StealCtx::new();
        ctx.donate(Chunk {
            assignment: vec![None; 2],
            var: Var(0),
            cands: Arc::new(vec![NodeId(0)]),
            lo: 0,
            hi: 1,
            depth: 0,
        });
        let result = std::panic::catch_unwind(|| {
            collect_worker_results(3, || {
                if let Some(_chunk) = next_chunk(&ctx) {
                    let _guard = ActiveGuard(&ctx);
                    panic!("injected steal panic");
                }
            })
        });
        let payload = result.expect_err("steal-worker panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .expect("payload must be the original panic message");
        assert_eq!(*message, "injected steal panic");
    }

    /// A sink that answers `Stop` on its first insert — after a short
    /// sleep so sibling workers pile up on the global mutex, maximising
    /// the overshoot window — and counts every insert arriving after the
    /// stop.
    struct SlowStopSink {
        first: Option<Vec<NodeId>>,
        stopped: bool,
        after_stop: usize,
    }

    impl TupleSink for SlowStopSink {
        fn contains_tuple(&self, _t: &[NodeId]) -> bool {
            false
        }

        fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus {
            if self.stopped {
                self.after_stop += 1;
                return SinkStatus::Stop;
            }
            // Widen the race: siblings that found a tuple concurrently are
            // now blocked on the sink mutex and will land post-stop.
            thread::sleep(std::time::Duration::from_millis(2));
            self.first = Some(t);
            self.stopped = true;
            SinkStatus::Stop
        }

        fn should_stop(&self) -> bool {
            self.stopped
        }
    }

    #[test]
    fn cancellation_overshoot_is_bounded_by_worker_count() {
        // Satellite: every work-stealing worker must observe `Stop`. The
        // only inserts that can land after the stop are from workers that
        // were already blocked on the sink mutex when the flag went up —
        // at most one per sibling worker; everything else (queued chunks,
        // deep sequential subtrees) must be abandoned via the cancel flag.
        let threads = 4;
        let mut g = generators::zipf_label_graph(64, 400, 6, 1.1, 7);
        let q = parse_crpq("(x, y) <- x -[(l0+l1)(l0+l1+l2)*]-> y", g.alphabet_mut()).unwrap();
        let full = eval_tuples(&q, &g, Semantics::Standard).len();
        assert!(full > 100, "need a big answer set, got {full}");
        let sink = eval_parallel_sink(
            &q,
            &g,
            Semantics::Standard,
            threads,
            SlowStopSink {
                first: None,
                stopped: false,
                after_stop: 0,
            },
        );
        assert!(sink.stopped, "the run must reach the sink at least once");
        assert!(sink.first.is_some());
        assert!(
            sink.after_stop < threads,
            "overshoot {} not bounded by worker count {}",
            sink.after_stop,
            threads
        );
    }

    /// A sink whose first insert panics — the mid-stream analogue of the
    /// panicking-worker tests: the panic unwinds through the sink mutex
    /// and a worker thread, and must still reach the caller intact.
    #[derive(Debug)]
    struct PanickingSink;

    impl TupleSink for PanickingSink {
        fn contains_tuple(&self, _t: &[NodeId]) -> bool {
            false
        }

        fn insert_tuple(&mut self, _t: Vec<NodeId>) -> SinkStatus {
            panic!("injected mid-stream sink panic");
        }
    }

    #[test]
    fn sink_panic_mid_stream_propagates_original_payload() {
        let mut g = generators::zipf_label_graph(32, 160, 4, 1.1, 13);
        let q = parse_crpq("(x, y) <- x -[(l0+l1)(l0+l1)*]-> y", g.alphabet_mut()).unwrap();
        assert!(!eval_tuples(&q, &g, Semantics::Standard).is_empty());
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eval_parallel_sink(&q, &g, Semantics::Standard, 4, PanickingSink)
        }));
        let payload = result.expect_err("sink panic must propagate");
        let message = payload
            .downcast_ref::<&str>()
            .expect("payload must be the original panic message");
        assert_eq!(*message, "injected mid-stream sink panic");
    }

    #[test]
    fn ask_parallel_matches_materialised_existence() {
        let mut g = generators::random_graph(10, 30, &["a", "b"], 5);
        let q = parse_crpq("(x, y) <- x -[a b*]-> y, y -[b]-> z", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            let full = eval_tuples(&q, &g, sem);
            assert_eq!(
                eval_ask_parallel(&q, &g, sem, 4),
                !full.is_empty(),
                "ask mismatch under {sem}"
            );
        }
        // And a query with no answers at all.
        let q2 = parse_crpq("(x) <- x -[a a a a a a a a a a a a]-> x", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            assert_eq!(
                eval_ask_parallel(&q2, &g, sem, 4),
                !eval_tuples(&q2, &g, sem).is_empty(),
                "empty-ask mismatch under {sem}"
            );
        }
    }

    #[test]
    fn limit_parallel_returns_subset_of_exact_size() {
        let mut g = generators::zipf_label_graph(40, 180, 5, 1.2, 31);
        let q = parse_crpq("(x, y) <- x -[(l0+l1)(l1+l2)*]-> y", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            let full: FxHashSet<Vec<NodeId>> = eval_tuples(&q, &g, sem).into_iter().collect();
            for k in [0usize, 1, 3, full.len(), full.len() + 10] {
                let limited = eval_limit_parallel(&q, &g, sem, k, 4);
                assert_eq!(
                    limited.len(),
                    k.min(full.len()),
                    "limit size mismatch under {sem}, k={k}"
                );
                assert!(
                    limited.iter().all(|t| full.contains(t)),
                    "limit produced a non-answer under {sem}, k={k}"
                );
                let mut sorted = limited.clone();
                sorted.sort();
                assert_eq!(limited, sorted, "limit output must be sorted");
            }
        }
    }

    #[test]
    fn donated_chunks_are_drained_after_quiescence_race() {
        // A worker that donates while siblings are between wake-up and
        // re-check must not strand the chunk: pop/active bookkeeping share
        // one lock, so either a sibling claims it or the donor's own loop
        // does. Exercised by funnelling many single-candidate chunks
        // through fewer workers.
        let ctx = StealCtx::new();
        for i in 0u32..32 {
            ctx.donate(Chunk {
                assignment: vec![None; 1],
                var: Var(0),
                cands: Arc::new(vec![NodeId(i)]),
                lo: 0,
                hi: 1,
                depth: 0,
            });
        }
        let seen = AtomicUsize::new(0);
        collect_worker_results(4, || {
            while let Some(chunk) = next_chunk(&ctx) {
                let _guard = ActiveGuard(&ctx);
                seen.fetch_add(chunk.hi - chunk.lo, Ordering::Relaxed);
            }
        });
        assert_eq!(seen.load(Ordering::Relaxed), 32, "every chunk processed");
    }
}

#[cfg(all(test, crpq_model_check))]
mod model_tests {
    //! Model-checked protocol invariants (CONCURRENCY.md I1–I4 and I6), plus the
    //! mutation-validation tests proving the checker catches this
    //! protocol's known failure modes. Compiled and run only under the
    //! model-check cfg:
    //!
    //! ```text
    //! RUSTFLAGS="--cfg crpq_model_check" cargo test -p crpq-core --lib model_
    //! ```
    //!
    //! (or `cargo xtask model-check`, which wraps exactly that).

    use super::*;
    use crate::eval::eval_tuples;
    use crpq_check::{explore, try_explore, Config, Failure};
    use crpq_graph::generators;
    use crpq_query::parse_crpq;
    use std::panic::AssertUnwindSafe;

    fn tiny_chunk() -> Chunk {
        Chunk {
            assignment: vec![None],
            var: Var(0),
            cands: Arc::new(vec![NodeId(0)]),
            lo: 0,
            hi: 1,
            depth: 0,
        }
    }

    // ---- invariants ---------------------------------------------------

    /// I1 — quiescence termination: under every explored interleaving of
    /// the full work-stealing pipeline (seed → steal → donate → drain),
    /// every worker exits and the answer set matches the sequential
    /// engine.
    #[test]
    fn model_quiescence_terminates_with_correct_answers() {
        let mut g = generators::labelled_path(3, &["a"]);
        let q = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        let expected = eval_tuples(&q, &g, Semantics::Standard);
        assert!(!expected.is_empty());
        let run = || {
            let got = eval_tuples_parallel(&q, &g, Semantics::Standard, 2);
            assert_eq!(got, expected);
        };
        let report = explore(&Config::exhaustive(1_000), run);
        assert!(report.schedules >= 1_000 || report.exhausted);
        assert_eq!(report.truncated, 0, "runs must fit the step budget");
        // The DFS frontier only deviates early in the run; a seeded
        // random pass reaches deep interleavings of the drain/donate
        // phase too.
        let deep = explore(&Config::random(0xC0FFEE, 200), run);
        assert_eq!(deep.schedules, 200);
    }

    /// I3 — post-stop suppression: once the shared sink answers `Stop`,
    /// no later insert reaches it on ANY schedule (the worker that loses
    /// the stop race re-checks the cancel flag under the sink mutex).
    ///
    /// Drives the `WorkerSink`/cancel protocol directly rather than
    /// through a full evaluation: the stop race sits so deep in a real
    /// run's schedule that a bounded DFS spends its whole budget on
    /// planning-phase deviations and never branches there (verified by
    /// mutating the re-check away — the full-eval form does NOT catch
    /// it; this form does). This pins the fix the checker surfaced: the
    /// pre-fix code forwarded the racing insert and relied on the global
    /// sink to ignore it.
    #[test]
    fn model_cancel_overshoot_is_suppressed() {
        struct StopAfterFirst {
            first: Option<Vec<NodeId>>,
            post_stop: usize,
        }
        impl TupleSink for StopAfterFirst {
            fn contains_tuple(&self, _t: &[NodeId]) -> bool {
                false
            }
            fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus {
                if self.first.is_some() {
                    self.post_stop += 1;
                    return SinkStatus::Stop;
                }
                self.first = Some(t);
                SinkStatus::Stop
            }
            fn should_stop(&self) -> bool {
                self.first.is_some()
            }
        }
        let report = explore(&Config::exhaustive(10_000), || {
            let ctx = StealCtx::new();
            let global = Mutex::new(StopAfterFirst {
                first: None,
                post_stop: 0,
            });
            thread::scope(|s| {
                for w in 0..2u32 {
                    let (ctx, global) = (&ctx, &global);
                    s.spawn(move || {
                        let mut sink = WorkerSink {
                            local: FxHashSet::default(),
                            global,
                            ctx,
                            post_cancel: 0,
                        };
                        // Each worker offers one distinct fresh tuple —
                        // the two offers race on the sink mutex.
                        let _ = sink.insert_tuple(vec![NodeId(w)]);
                        assert!(sink.post_cancel <= 1, "overshoot bound");
                    });
                }
            });
            let final_state = global.into_inner().unwrap_or_else(|e| e.into_inner());
            assert!(final_state.first.is_some(), "some answer must land");
            assert_eq!(
                final_state.post_stop, 0,
                "an insert reached the sink post-stop"
            );
        });
        assert!(report.schedules >= 1_000, "coverage floor");
    }

    /// I6 — worker panic propagation: a panicking worker's payload
    /// reaches the caller intact under every schedule, and its siblings
    /// wind down instead of deadlocking (the `ActiveGuard` drop runs on
    /// unwind).
    #[test]
    fn model_worker_panic_propagates() {
        let report = explore(&Config::exhaustive(1_000), || {
            let turn = AtomicUsize::new(0);
            let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
                collect_worker_results(2, || {
                    if turn.fetch_add(1, Ordering::Relaxed) == 0 {
                        panic!("injected worker panic");
                    }
                });
            }));
            let payload = caught.expect_err("worker panic must reach the caller");
            let msg = payload
                .downcast_ref::<&str>()
                .expect("payload must survive intact");
            assert_eq!(*msg, "injected worker panic");
        });
        assert!(report.schedules > 1, "exploration must branch");
    }

    /// I4 — exact-k under races: `LIMIT k` returns exactly `k` distinct
    /// real answers no matter how workers interleave on the shared
    /// `LimitSink`.
    #[test]
    fn model_limit_sink_exact_k_under_races() {
        let mut g = generators::labelled_path(4, &["a"]);
        let q = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        let all = eval_tuples(&q, &g, Semantics::Standard);
        assert!(all.len() > 2, "need more answers than the limit");
        let run = || {
            let got = eval_limit_parallel(&q, &g, Semantics::Standard, 2, 2);
            assert_eq!(got.len(), 2, "LIMIT k must be exact, got {got:?}");
            for t in &got {
                assert!(all.contains(t), "emitted a non-answer: {t:?}");
            }
        };
        let report = explore(&Config::exhaustive(1_000), run);
        assert!(report.schedules >= 1_000 || report.exhausted);
        // Deep-schedule pass — the cancel/limit races live late in the
        // run, past the bounded DFS frontier.
        let deep = explore(&Config::random(0xBEEF, 200), run);
        assert_eq!(deep.schedules, 200);
    }

    // ---- mutation validation ------------------------------------------
    //
    // Each test re-creates one protocol mutant against the REAL scheduler
    // pieces and asserts the checker reports the failure class the mutant
    // causes. If a refactor ever makes one of these pass cleanly, the
    // checker lost its teeth — treat that as a CI failure.

    /// Mutant: the `ActiveGuard` release is dropped. A sibling parked in
    /// `next_chunk` waits for `active` to fall and must be reported as a
    /// lost wakeup / deadlock.
    #[test]
    fn model_mutant_leaked_active_guard_is_caught() {
        let failure = try_explore(&Config::exhaustive(2_000), || {
            let ctx = StealCtx::new();
            ctx.lock().queue.push(tiny_chunk());
            thread::scope(|s| {
                s.spawn(|| {
                    if next_chunk(&ctx).is_some() {
                        // MUTANT: `active` is never released.
                        std::mem::forget(ActiveGuard(&ctx));
                    }
                });
                s.spawn(|| {
                    while next_chunk(&ctx).is_some() {
                        drop(ActiveGuard(&ctx));
                    }
                });
            });
        })
        .expect_err("a leaked ActiveGuard must strand a sibling");
        assert!(
            matches!(
                failure,
                Failure::LostWakeup { .. } | Failure::Deadlock { .. }
            ),
            "wrong failure class: {failure}"
        );
    }

    /// Mutant: `donate` without its notify. The starving sibling never
    /// learns about the queued chunk: lost wakeup.
    #[test]
    fn model_mutant_unnotified_donation_is_caught() {
        let failure = try_explore(&Config::exhaustive(2_000), || {
            let ctx = StealCtx::new();
            ctx.lock().queue.push(tiny_chunk());
            thread::scope(|s| {
                s.spawn(|| {
                    if next_chunk(&ctx).is_some() {
                        let guard = ActiveGuard(&ctx);
                        // MUTANT: `donate()` minus `cv.notify_one()`.
                        ctx.lock().queue.push(tiny_chunk());
                        drop(guard);
                    }
                });
                s.spawn(|| {
                    while next_chunk(&ctx).is_some() {
                        drop(ActiveGuard(&ctx));
                    }
                });
            });
        })
        .expect_err("a silent donation must strand a starving sibling");
        assert!(
            matches!(failure, Failure::LostWakeup { .. }),
            "wrong failure class: {failure}"
        );
    }

    /// Mutant: `LimitSink`'s count-then-insert runs without the sink
    /// mutex (modelled as a non-atomic read-check-write). Two workers can
    /// both pass the `< k` check and the limit overshoots — the checker
    /// must find that interleaving.
    #[test]
    fn model_mutant_racy_limit_increment_is_caught() {
        let failure = try_explore(&Config::exhaustive(2_000), || {
            let k = 1usize;
            // MUTANT: the guarded `count += 1; insert` critical section,
            // with the guard removed.
            let count = AtomicUsize::new(0);
            // Correctly-atomic bookkeeping of how many inserts happened.
            let emitted = AtomicUsize::new(0);
            thread::scope(|s| {
                for _ in 0..2 {
                    s.spawn(|| {
                        let seen = count.load(Ordering::Relaxed);
                        if seen < k {
                            count.store(seen + 1, Ordering::Relaxed);
                            emitted.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            assert!(
                emitted.load(Ordering::Relaxed) <= k,
                "limit overshot: {} inserts past k={k}",
                emitted.load(Ordering::Relaxed)
            );
        })
        .expect_err("the unguarded limit increment must be caught");
        assert!(
            matches!(failure, Failure::Panic { .. }),
            "wrong failure class: {failure}"
        );
    }
}
