//! Parallel evaluation helpers.
//!
//! Two layers of the planner/executor pipeline parallelise independently:
//!
//! * **Materialisation** — the shared [`RelationCatalog`] is built with
//!   `threads` workers, so each distinct atom relation's per-source BFS
//!   sweeps are partitioned across scoped threads
//!   ([`crpq_graph::rpq::rpq_relation_parallel`]); the catalog also means
//!   a relation shared by several ε-free variants is materialised once.
//! * **Join search** — after semi-join pruning, the candidates of the
//!   first (most selective) join variable partition the search space.
//!   Each worker claims candidates from an atomic cursor, runs the shared
//!   immutable [`JoinPlan`] with that variable pre-assigned (with a
//!   per-worker verification scratch), and merges its local result set at
//!   the end — far better work granularity than the old `|V|^arity`
//!   tuple-space sweep, which spent most of its time rejecting tuples the
//!   pruned domains rule out up front.

use crate::eval::{
    eval_contains, plan_variant, sorted_tuples, JoinMode, JoinPlan, RelationCatalog, Semantics,
    VariantPlan, VerifyScratch,
};
use crate::wcoj;
use crpq_graph::{rpq, GraphDb, NodeId};
use crpq_query::Crpq;
use crpq_util::FxHashSet;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Parallel version of [`crate::eval::eval_tuples`].
///
/// `threads = 0` means one thread per available CPU (capped at 16).
pub fn eval_tuples_parallel(
    q: &Crpq,
    g: &GraphDb,
    sem: Semantics,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    let threads = rpq::effective_threads(threads);
    if q.free.is_empty() {
        return if eval_contains(q, g, &[], sem) {
            vec![Vec::new()]
        } else {
            Vec::new()
        };
    }

    let variants = q.epsilon_free_union();
    // Planning phase: one shared catalog, parallel materialisation.
    let mut catalog = RelationCatalog::with_threads(g, threads);
    let plans: Vec<VariantPlan> = variants
        .iter()
        .map(|v| plan_variant(v, g, false, &mut catalog))
        .collect();
    let catalog = catalog; // frozen for the execution phase

    let mut out: FxHashSet<Vec<NodeId>> = FxHashSet::default();
    let mut seq_scratch = VerifyScratch::new();
    for (variant, vplan) in variants.iter().zip(plans) {
        let plan = JoinPlan::build(variant, g, sem, vplan, &catalog);
        if plan.is_empty() {
            continue;
        }
        match plan.split_candidates() {
            None => {
                // Variable-free variant: nothing to partition.
                plan.search_all(&mut seq_scratch, &mut out);
            }
            Some((_, cands)) if cands.len() <= 1 || threads <= 1 => {
                // Too little work to fan out.
                plan.search_all(&mut seq_scratch, &mut out);
            }
            Some((var, cands)) => {
                // The WCOJ elimination order depends only on (plan, var):
                // compute it once here, not per candidate in the workers.
                let wcoj_order = plan
                    .use_wcoj(JoinMode::Auto)
                    .then(|| wcoj::fixed_order(&plan, var));
                let next = AtomicUsize::new(0);
                let locals = collect_worker_results(threads.min(cands.len()), || {
                    let mut local: FxHashSet<Vec<NodeId>> = FxHashSet::default();
                    let mut scratch = VerifyScratch::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&node) = cands.get(i) else { break };
                        if let Some(order) = &wcoj_order {
                            wcoj::search_with_fixed(&plan, order, node, &mut scratch, &mut local);
                        } else {
                            plan.search_with_fixed(var, node, &mut scratch, &mut local);
                        }
                    }
                    local
                });
                for local in locals {
                    out.extend(local);
                }
            }
        }
    }
    sorted_tuples(out)
}

/// Runs `worker` on `threads` scoped threads and returns every worker's
/// result, in spawn order.
///
/// The per-worker results come back **through the join handles** — there
/// is deliberately no shared accumulator: the old `Mutex`-merged variant
/// meant a panicking worker poisoned the mutex, so its siblings died on a
/// confusing `PoisonError` and the *original* panic message was lost. Here
/// every handle is joined and the first panic payload is re-raised intact
/// via [`std::panic::resume_unwind`] (after all workers have finished —
/// scoped threads cannot outlive this call).
fn collect_worker_results<R: Send>(threads: usize, worker: impl Fn() -> R + Sync) -> Vec<R> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads.max(1)).map(|_| scope.spawn(&worker)).collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_tuples;
    use crpq_graph::generators;
    use crpq_query::parse_crpq;

    #[test]
    fn parallel_matches_sequential() {
        let mut g = generators::random_graph(7, 18, &["a", "b", "c"], 11);
        let q = parse_crpq(
            "(x, y) <- x -[(a+b)(a+b)*]-> y, y -[c*]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 4);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn parallel_matches_sequential_with_existentials() {
        let mut g = generators::random_graph(9, 26, &["a", "b"], 3);
        let q = parse_crpq("(y) <- x -[a a*]-> y, y -[b]-> z", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 3);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn boolean_parallel() {
        let mut g = generators::labelled_path(4, &["a"]);
        let q = parse_crpq("x -[a a]-> y", g.alphabet_mut()).unwrap();
        let res = eval_tuples_parallel(&q, &g, Semantics::Standard, 2);
        assert_eq!(res, vec![Vec::new()]);
    }

    #[test]
    fn worker_panic_propagates_original_payload() {
        // Regression: a panicking worker used to poison the shared merge
        // mutex, so sibling workers (and the caller) surfaced a
        // `PoisonError` instead of the injected panic. The join-handle
        // merge must re-raise the original payload intact.
        let cursor = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(|| {
            collect_worker_results(4, || {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i == 2 {
                    panic!("injected worker panic {i}");
                }
                i
            })
        });
        let payload = result.expect_err("worker panic must propagate");
        let message = payload
            .downcast_ref::<String>()
            .expect("payload must be the original panic message");
        assert_eq!(message, "injected worker panic 2");
    }

    #[test]
    fn every_worker_result_is_collected() {
        // One result per worker, none lost or duplicated. (Which worker
        // drew which cursor value is scheduling-dependent, so spawn order
        // itself is unobservable from identical closures — this pins
        // completeness, not ordering.)
        let cursor = AtomicUsize::new(0);
        let mut results = collect_worker_results(3, || cursor.fetch_add(1, Ordering::Relaxed));
        results.sort_unstable();
        assert_eq!(results, vec![0, 1, 2]);
    }

    #[test]
    fn parallel_matches_sequential_on_cyclic_shape() {
        // Cyclic (triangle) variants route workers through the WCOJ
        // executor — the partitioned result must still match the
        // sequential engine under every semantics.
        let mut g = generators::random_graph(10, 40, &["a", "b", "c"], 23);
        let q = parse_crpq(
            "(x, y, z) <- x -[a]-> y, y -[b]-> z, z -[c]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 4);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn single_thread_degenerates_to_sequential() {
        let mut g = generators::labelled_cycle(5, &["a", "b"]);
        let q = parse_crpq("(x, y) <- x -[(a+b)(a+b)*]-> y", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            assert_eq!(
                eval_tuples(&q, &g, sem),
                eval_tuples_parallel(&q, &g, sem, 1),
                "mismatch under {sem}"
            );
        }
    }
}
