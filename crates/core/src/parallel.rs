//! Parallel evaluation helpers.
//!
//! Tuple-space sweeps (`|V|^arity` membership tests) parallelise trivially;
//! this module fans them out over `crossbeam` scoped threads with a
//! `parking_lot`-guarded result set. Used by the benchmark harness for the
//! larger data-complexity experiments (E9).

use crate::eval::{eval_contains, Semantics};
use crpq_graph::{GraphDb, NodeId};
use crpq_query::Crpq;
use parking_lot::Mutex;
use std::collections::BTreeSet;

/// Parallel version of [`crate::eval::eval_tuples`].
///
/// `threads = 0` means one thread per available CPU (capped at 16).
pub fn eval_tuples_parallel(
    q: &Crpq,
    g: &GraphDb,
    sem: Semantics,
    threads: usize,
) -> Vec<Vec<NodeId>> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(4, |n| n.get().min(16))
    } else {
        threads
    };
    let arity = q.free.len();
    if arity == 0 {
        return if eval_contains(q, g, &[], sem) { vec![Vec::new()] } else { Vec::new() };
    }
    let n = g.num_nodes();
    let total: usize = n.pow(arity as u32);
    let results: Mutex<BTreeSet<Vec<NodeId>>> = Mutex::new(BTreeSet::new());
    let next = std::sync::atomic::AtomicUsize::new(0);

    crossbeam::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| {
                let mut local: Vec<Vec<NodeId>> = Vec::new();
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= total {
                        break;
                    }
                    let tuple = decode_tuple(idx, n, arity);
                    if eval_contains(q, g, &tuple, sem) {
                        local.push(tuple);
                    }
                }
                if !local.is_empty() {
                    results.lock().extend(local);
                }
            });
        }
    })
    .expect("evaluation worker panicked");

    results.into_inner().into_iter().collect()
}

/// Decodes tuple index `idx` in base `n` into node ids (most significant
/// position first, matching the sequential enumeration order).
fn decode_tuple(mut idx: usize, n: usize, arity: usize) -> Vec<NodeId> {
    let mut tuple = vec![NodeId(0); arity];
    for pos in (0..arity).rev() {
        tuple[pos] = NodeId((idx % n) as u32);
        idx /= n;
    }
    tuple
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_tuples;
    use crpq_graph::generators;
    use crpq_query::parse_crpq;

    #[test]
    fn parallel_matches_sequential() {
        let mut g = generators::random_graph(7, 18, &["a", "b", "c"], 11);
        let q =
            parse_crpq("(x, y) <- x -[(a+b)(a+b)*]-> y, y -[c*]-> x", g.alphabet_mut())
                .unwrap();
        for sem in Semantics::ALL {
            let seq = eval_tuples(&q, &g, sem);
            let par = eval_tuples_parallel(&q, &g, sem, 4);
            assert_eq!(seq, par, "mismatch under {sem}");
        }
    }

    #[test]
    fn boolean_parallel() {
        let mut g = generators::labelled_path(4, &["a"]);
        let q = parse_crpq("x -[a a]-> y", g.alphabet_mut()).unwrap();
        let res = eval_tuples_parallel(&q, &g, Semantics::Standard, 2);
        assert_eq!(res, vec![Vec::new()]);
    }

    #[test]
    fn decode_tuple_roundtrip() {
        let n = 5usize;
        let arity = 3;
        let mut seen = std::collections::HashSet::new();
        for idx in 0..n.pow(arity as u32) {
            let t = decode_tuple(idx, n, arity);
            assert_eq!(t.len(), arity);
            assert!(seen.insert(t));
        }
        assert_eq!(seen.len(), 125);
    }
}
