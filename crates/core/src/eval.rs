//! Direct evaluation of CRPQs under the three semantics (§2.1).
//!
//! The engine works on the ε-free variants of the query
//! ([`Crpq::epsilon_free_union`]) and backtracks over variable assignments.
//! Candidate domains are pruned with (exact-for-standard, sound-for-injective)
//! RPQ reachability; fully assigned tuples are then verified per semantics:
//!
//! * `st` — reachability pruning is already exact, nothing to re-check;
//! * `a-inj` — each atom re-checked with a simple-path (or simple-cycle)
//!   search, independently per atom;
//! * `q-inj` — assignments are generated injectively and atoms are *placed*
//!   one by one, accumulating the set of used nodes so paths stay internally
//!   disjoint (backtracking across atoms).

use crpq_automata::Nfa;
use crpq_graph::{rpq, GraphDb, NodeId};
use crpq_query::{Crpq, Var};
use crpq_util::{BitSet, FxHashMap};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// The three semantics of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Semantics {
    /// Arbitrary paths (`Q(G)_st`).
    Standard,
    /// Simple paths per atom (`Q(G)_a-inj`).
    AtomInjective,
    /// Injective assignment + internally disjoint simple paths (`Q(G)_q-inj`).
    QueryInjective,
}

impl Semantics {
    /// All three semantics, in hierarchy order (most restrictive last).
    pub const ALL: [Semantics; 3] =
        [Semantics::Standard, Semantics::AtomInjective, Semantics::QueryInjective];

    /// Short name as used in the paper.
    pub fn short_name(self) -> &'static str {
        match self {
            Semantics::Standard => "st",
            Semantics::AtomInjective => "a-inj",
            Semantics::QueryInjective => "q-inj",
        }
    }
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Whether `tuple ∈ Q(G)_sem`.
pub fn eval_contains(q: &Crpq, g: &GraphDb, tuple: &[NodeId], sem: Semantics) -> bool {
    assert_eq!(q.free.len(), tuple.len(), "tuple arity must match free tuple");
    q.epsilon_free_union()
        .iter()
        .any(|variant| VariantEval::new(variant, g, sem).contains(tuple))
}

/// Like [`eval_contains`], but first classifies every atom language
/// ([`crpq_automata::tractability`]) and routes **factor-deletion-closed**
/// atoms through polynomial arbitrary-path reachability under
/// atom-injective semantics.
///
/// This is sound and complete by the loop-pruning lemma: for a
/// deletion-closed language, a walk witness can be pruned to a simple path
/// whose label stays in the language, so the (NP-hard in general)
/// simple-path check degenerates to reachability — the executable content
/// of the tractable side of the trichotomy the paper cites as [3].
pub fn eval_contains_analyzed(q: &Crpq, g: &GraphDb, tuple: &[NodeId], sem: Semantics) -> bool {
    assert_eq!(q.free.len(), tuple.len(), "tuple arity must match free tuple");
    q.epsilon_free_union()
        .iter()
        .any(|variant| VariantEval::new_analyzed(variant, g, sem).contains(tuple))
}

/// [`eval_tuples`] with the deletion-closed fast path of
/// [`eval_contains_analyzed`].
pub fn eval_tuples_analyzed(q: &Crpq, g: &GraphDb, sem: Semantics) -> Vec<Vec<NodeId>> {
    let variants = q.epsilon_free_union();
    let mut evals: Vec<VariantEval> =
        variants.iter().map(|v| VariantEval::new_analyzed(v, g, sem)).collect();
    let mut out = BTreeSet::new();
    let mut tuple = vec![NodeId(0); q.free.len()];
    enumerate_tuples(g, &mut tuple, 0, &mut |tuple: &[NodeId]| {
        if evals.iter_mut().any(|e| e.contains(tuple)) {
            out.insert(tuple.to_vec());
        }
    });
    out.into_iter().collect()
}

/// Whether the Boolean query holds: `Q(G)_sem ≠ ∅` (for Boolean `Q` this is
/// membership of the empty tuple).
pub fn eval_boolean(q: &Crpq, g: &GraphDb, sem: Semantics) -> bool {
    assert!(q.is_boolean(), "eval_boolean requires a Boolean query");
    eval_contains(q, g, &[], sem)
}

/// The full result set `Q(G)_sem`, sorted and deduplicated.
///
/// Enumeration is by candidate free tuple (`|V|^arity` membership tests);
/// intended for the small-to-medium instances of the experiment suite.
pub fn eval_tuples(q: &Crpq, g: &GraphDb, sem: Semantics) -> Vec<Vec<NodeId>> {
    let mut out = BTreeSet::new();
    let variants = q.epsilon_free_union();
    // One evaluator per variant, shared across candidate tuples so the
    // reachability caches amortise.
    let mut evals: Vec<VariantEval> =
        variants.iter().map(|v| VariantEval::new(v, g, sem)).collect();
    let arity = q.free.len();
    let mut tuple = vec![NodeId(0); arity];
    enumerate_tuples(g, &mut tuple, 0, &mut |tuple: &[NodeId]| {
        if evals.iter_mut().any(|e| e.contains(tuple)) {
            out.insert(tuple.to_vec());
        }
    });
    out.into_iter().collect()
}

/// Alias for [`eval_tuples`] (the general entry point).
pub fn eval(q: &Crpq, g: &GraphDb, sem: Semantics) -> Vec<Vec<NodeId>> {
    eval_tuples(q, g, sem)
}

/// Whether `tuple ∈ (Q₁ ∨ … ∨ Qₖ)(G)_sem` — union semantics is the union
/// of branch results.
pub fn eval_contains_union(
    u: &crpq_query::UnionCrpq,
    g: &GraphDb,
    tuple: &[NodeId],
    sem: Semantics,
) -> bool {
    u.branches.iter().any(|q| eval_contains(q, g, tuple, sem))
}

fn enumerate_tuples<F: FnMut(&[NodeId])>(
    g: &GraphDb,
    tuple: &mut Vec<NodeId>,
    pos: usize,
    f: &mut F,
) {
    if pos == tuple.len() {
        f(tuple);
        return;
    }
    for v in g.nodes() {
        tuple[pos] = v;
        enumerate_tuples(g, tuple, pos + 1, f);
    }
}

struct CompiledAtom {
    src: Var,
    dst: Var,
    nfa: Nfa,
    nfa_rev: Nfa,
    /// `ε`-freeness is guaranteed upstream; kept as a debug invariant.
    accepts_epsilon: bool,
    /// Whether the language is factor-deletion closed (only computed by
    /// `VariantEval::new_analyzed`): enables the polynomial reachability
    /// fast path for atom-injective checks.
    deletion_closed: bool,
}

/// Evaluation of a single ε-free variant.
pub(crate) struct VariantEval<'a> {
    g: &'a GraphDb,
    g_rev: GraphDb,
    q: &'a Crpq,
    atoms: Vec<CompiledAtom>,
    sem: Semantics,
    reach_fwd: FxHashMap<(usize, NodeId), BitSet>,
    reach_back: FxHashMap<(usize, NodeId), BitSet>,
}

impl<'a> VariantEval<'a> {
    pub(crate) fn new(variant: &'a Crpq, g: &'a GraphDb, sem: Semantics) -> Self {
        Self::build(variant, g, sem, false)
    }

    /// Like [`VariantEval::new`], but classifies every atom language and
    /// marks factor-deletion-closed atoms for the reachability fast path.
    pub(crate) fn new_analyzed(variant: &'a Crpq, g: &'a GraphDb, sem: Semantics) -> Self {
        Self::build(variant, g, sem, true)
    }

    fn build(variant: &'a Crpq, g: &'a GraphDb, sem: Semantics, analyze: bool) -> Self {
        let atoms = variant
            .atoms
            .iter()
            .map(|a| {
                let nfa = a.nfa();
                debug_assert!(!nfa.accepts_epsilon(), "variants must be ε-free");
                let deletion_closed = analyze
                    && crpq_automata::tractability::deletion_closed(&nfa, &nfa.symbols());
                CompiledAtom {
                    src: a.src,
                    dst: a.dst,
                    nfa_rev: nfa.reverse(),
                    accepts_epsilon: nfa.accepts_epsilon(),
                    deletion_closed,
                    nfa,
                }
            })
            .collect();
        VariantEval {
            g,
            g_rev: g.reversed(),
            q: variant,
            atoms,
            sem,
            reach_fwd: FxHashMap::default(),
            reach_back: FxHashMap::default(),
        }
    }

    fn contains(&mut self, tuple: &[NodeId]) -> bool {
        // Pin free variables; repeated free vars must agree.
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars];
        for (&v, &n) in self.q.free.iter().zip(tuple) {
            match assignment[v.index()] {
                Some(prev) if prev != n => return false,
                _ => assignment[v.index()] = Some(n),
            }
        }
        if self.sem == Semantics::QueryInjective {
            // μ injective: distinct pinned vars need distinct nodes.
            for i in 0..assignment.len() {
                for j in i + 1..assignment.len() {
                    if let (Some(a), Some(b)) = (assignment[i], assignment[j]) {
                        if a == b {
                            return false;
                        }
                    }
                }
            }
        }
        let mut found = false;
        let _ = self.search(&mut assignment, &mut |this, full| {
            if this.verify(full) {
                found = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        found
    }

    /// Like `contains`, but returns the witnessing assignment and one node
    /// path per atom instead of a bare boolean.
    pub(crate) fn contains_witness(
        &mut self,
        tuple: &[NodeId],
    ) -> Option<(Vec<NodeId>, Vec<Vec<NodeId>>)> {
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars];
        for (&v, &n) in self.q.free.iter().zip(tuple) {
            match assignment[v.index()] {
                Some(prev) if prev != n => return None,
                _ => assignment[v.index()] = Some(n),
            }
        }
        if self.sem == Semantics::QueryInjective {
            for i in 0..assignment.len() {
                for j in i + 1..assignment.len() {
                    if let (Some(a), Some(b)) = (assignment[i], assignment[j]) {
                        if a == b {
                            return None;
                        }
                    }
                }
            }
        }
        let mut witness = None;
        let _ = self.search(&mut assignment, &mut |this, full| {
            if let Some(paths) = this.verify_paths(full) {
                witness = Some((full.to_vec(), paths));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        witness
    }

    /// Backtracks over variable assignments, invoking `visit` on complete
    /// assignments that pass the reachability pruning.
    fn search(
        &mut self,
        assignment: &mut Vec<Option<NodeId>>,
        visit: &mut dyn FnMut(&mut Self, &[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Choose the unassigned var with the fewest candidates.
        let mut best: Option<(Var, Vec<NodeId>)> = None;
        for v in 0..assignment.len() {
            if assignment[v].is_some() {
                continue;
            }
            let cands = self.candidates(Var(v as u32), assignment);
            if cands.is_empty() {
                return ControlFlow::Continue(());
            }
            let better = best.as_ref().is_none_or(|(_, c)| cands.len() < c.len());
            if better {
                let single = cands.len() == 1;
                best = Some((Var(v as u32), cands));
                if single {
                    break;
                }
            }
        }
        let Some((var, cands)) = best else {
            let full: Vec<NodeId> = assignment.iter().map(|a| a.unwrap()).collect();
            return visit(self, &full);
        };
        for node in cands {
            assignment[var.index()] = Some(node);
            self.search(assignment, visit)?;
            assignment[var.index()] = None;
        }
        ControlFlow::Continue(())
    }

    fn reach_fwd(&mut self, atom: usize, from: NodeId) -> &BitSet {
        if !self.reach_fwd.contains_key(&(atom, from)) {
            let set = rpq::rpq_reach(self.g, &self.atoms[atom].nfa, from);
            self.reach_fwd.insert((atom, from), set);
        }
        &self.reach_fwd[&(atom, from)]
    }

    fn reach_back(&mut self, atom: usize, to: NodeId) -> &BitSet {
        if !self.reach_back.contains_key(&(atom, to)) {
            let set = rpq::rpq_reach(&self.g_rev, &self.atoms[atom].nfa_rev, to);
            self.reach_back.insert((atom, to), set);
        }
        &self.reach_back[&(atom, to)]
    }

    fn candidates(&mut self, var: Var, assignment: &[Option<NodeId>]) -> Vec<NodeId> {
        let mut domain: Option<BitSet> = None;
        let restrict = |domain: &mut Option<BitSet>, set: &BitSet| match domain {
            None => *domain = Some(set.clone()),
            Some(d) => d.intersect_with(set),
        };

        for i in 0..self.atoms.len() {
            let (src, dst) = (self.atoms[i].src, self.atoms[i].dst);
            if src == var && dst == var {
                continue; // self-loop atoms handled per candidate below
            }
            if src == var {
                if let Some(dst_node) = assignment[dst.index()] {
                    let set = self.reach_back(i, dst_node).clone();
                    restrict(&mut domain, &set);
                }
            }
            if dst == var {
                if let Some(src_node) = assignment[src.index()] {
                    let set = self.reach_fwd(i, src_node).clone();
                    restrict(&mut domain, &set);
                }
            }
        }

        let mut cands: Vec<NodeId> = match domain {
            Some(d) => d.iter().map(|i| NodeId(i as u32)).collect(),
            None => self.g.nodes().collect(),
        };

        // Self-loop atoms: reachability from the node back to itself.
        let loop_atoms: Vec<usize> = (0..self.atoms.len())
            .filter(|&i| self.atoms[i].src == var && self.atoms[i].dst == var)
            .collect();
        for i in loop_atoms {
            cands.retain(|&n| {
                // borrow dance: compute membership through the cache
                let set = rpq::rpq_reach(self.g, &self.atoms[i].nfa, n);
                set.contains(n.index())
            });
        }

        // Injectivity of μ under q-inj.
        if self.sem == Semantics::QueryInjective {
            cands.retain(|n| !assignment.iter().flatten().any(|used| used == n));
        }
        cands
    }

    /// Verifies a complete assignment according to the semantics.
    fn verify(&mut self, mu: &[NodeId]) -> bool {
        match self.sem {
            Semantics::Standard => {
                // Pruning used exact reachability for non-loop atoms; loop
                // atoms were checked at candidate time. Re-check everything
                // defensively (cheap thanks to the cache).
                (0..self.atoms.len()).all(|i| {
                    let (s, d) =
                        (mu[self.atoms[i].src.index()], mu[self.atoms[i].dst.index()]);
                    self.reach_fwd(i, s).contains(d.index())
                })
            }
            Semantics::AtomInjective => (0..self.atoms.len()).all(|i| {
                let atom = &self.atoms[i];
                let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
                if atom.src == atom.dst {
                    rpq::simple_cycle_exists(self.g, &atom.nfa, s, &self.g.node_set())
                } else if s == d {
                    // Simple path from a node to itself is the empty path;
                    // atoms are ε-free, so this is unsatisfiable.
                    atom.accepts_epsilon
                } else if atom.deletion_closed {
                    // Loop-pruning lemma: for deletion-closed languages a
                    // walk witness prunes to a simple path still in the
                    // language, so cached reachability is exact.
                    self.reach_fwd(i, s).contains(d.index())
                } else {
                    rpq::simple_path_exists(self.g, &atom.nfa, s, d, &self.g.node_set())
                }
            }),
            Semantics::QueryInjective => {
                // Jointly place internally disjoint paths.
                let mut used = self.g.node_set();
                for &n in mu {
                    used.insert(n.index());
                }
                let mut scratch = Vec::new();
                place_atoms(self.g, &self.atoms, mu, 0, &mut used, &mut scratch)
            }
        }
    }

    /// Like `verify`, but returns one witnessing node path per atom.
    fn verify_paths(&mut self, mu: &[NodeId]) -> Option<Vec<Vec<NodeId>>> {
        match self.sem {
            Semantics::Standard => (0..self.atoms.len())
                .map(|i| {
                    let atom = &self.atoms[i];
                    let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
                    rpq::shortest_path(self.g, &atom.nfa, s, d)
                })
                .collect(),
            Semantics::AtomInjective => (0..self.atoms.len())
                .map(|i| {
                    let atom = &self.atoms[i];
                    let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
                    let mut cap: Option<Vec<NodeId>> = None;
                    if atom.src == atom.dst {
                        rpq::for_each_simple_cycle(self.g, &atom.nfa, s, &self.g.node_set(), |p| {
                            cap = Some(p.to_vec());
                            ControlFlow::Break(())
                        });
                    } else if s == d {
                        // Only the empty path is simple from a node to
                        // itself; atoms are ε-free, so this fails.
                        if atom.accepts_epsilon {
                            cap = Some(vec![s]);
                        }
                    } else {
                        rpq::for_each_simple_path(self.g, &atom.nfa, s, d, &self.g.node_set(), |p| {
                            cap = Some(p.to_vec());
                            ControlFlow::Break(())
                        });
                    }
                    cap
                })
                .collect(),
            Semantics::QueryInjective => {
                let mut used = self.g.node_set();
                for &n in mu {
                    used.insert(n.index());
                }
                let mut paths = Vec::with_capacity(self.atoms.len());
                place_atoms(self.g, &self.atoms, mu, 0, &mut used, &mut paths)
                    .then_some(paths)
            }
        }
    }
}

/// Recursively places atom paths so that no internal node is reused
/// (query-injective joint search). On success, `paths` holds the chosen
/// node path for every atom from `i` onwards (earlier entries untouched).
fn place_atoms(
    g: &GraphDb,
    atoms: &[CompiledAtom],
    mu: &[NodeId],
    i: usize,
    used: &mut BitSet,
    paths: &mut Vec<Vec<NodeId>>,
) -> bool {
    if i == atoms.len() {
        return true;
    }
    let atom = &atoms[i];
    let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
    let mut placed = false;
    // Snapshot of the blocked set for the enumeration: `try_rest` restores
    // `used` to exactly this state before the enumerator resumes, so the
    // snapshot stays accurate throughout.
    let blocked = used.clone();
    let complete = if atom.src == atom.dst {
        rpq::for_each_simple_cycle(g, &atom.nfa, s, &blocked, |path| {
            try_rest(g, atoms, mu, i, used, path, &mut placed, paths)
        })
    } else {
        rpq::for_each_simple_path(g, &atom.nfa, s, d, &blocked, |path| {
            try_rest(g, atoms, mu, i, used, path, &mut placed, paths)
        })
    };
    debug_assert!(complete || placed);
    placed
}

#[allow(clippy::too_many_arguments)]
fn try_rest(
    g: &GraphDb,
    atoms: &[CompiledAtom],
    mu: &[NodeId],
    i: usize,
    used: &mut BitSet,
    path: &[NodeId],
    placed: &mut bool,
    paths: &mut Vec<Vec<NodeId>>,
) -> ControlFlow<()> {
    // Internal nodes of `path` (endpoints are μ-images, already in `used`).
    let internals: Vec<NodeId> = path[1..path.len().saturating_sub(1)]
        .iter()
        .copied()
        .filter(|n| !used.contains(n.index()))
        .collect();
    debug_assert_eq!(
        internals.len(),
        path.len().saturating_sub(2),
        "simple-path search must avoid used internals"
    );
    for n in &internals {
        used.insert(n.index());
    }
    paths.truncate(i);
    paths.push(path.to_vec());
    let ok = place_atoms(g, atoms, mu, i + 1, used, paths);
    for n in &internals {
        used.remove(n.index());
    }
    if ok {
        *placed = true;
        ControlFlow::Break(())
    } else {
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_graph::GraphBuilder;
    use crpq_query::parse_crpq;

    /// Builds a graph and keeps the shared alphabet for queries.
    fn graph(edges: &[(&str, &str, &str)]) -> GraphDb {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        b.finish()
    }

    fn q(text: &str, g: &mut GraphDb) -> Crpq {
        parse_crpq(text, g.alphabet_mut()).unwrap()
    }

    fn node(g: &GraphDb, n: &str) -> NodeId {
        g.node_by_name(n).unwrap()
    }

    /// Figure 2 reconstruction (G): u -a-> v -b-> w, w -c-> v -c-> u.
    /// Satisfies Example 2.1's claims: (u,w) ∈ a-inj \ q-inj, st = a-inj.
    fn example21_g() -> GraphDb {
        graph(&[("u", "a", "v"), ("v", "b", "w"), ("w", "c", "v"), ("v", "c", "u")])
    }

    /// Figure 2 reconstruction (G′): abab-walk from u to v repeats u;
    /// (u,v) ∈ st \ a-inj.
    fn example21_gprime() -> GraphDb {
        graph(&[("u", "a", "w"), ("w", "b", "t"), ("t", "a", "u"), ("u", "b", "v"), ("v", "c", "u")])
    }

    #[test]
    fn example_2_1_graph_g() {
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        let (u, w) = (node(&g, "u"), node(&g, "w"));
        // (u, w) ∈ a-inj but ∉ q-inj:
        assert!(eval_contains(&query, &g, &[u, w], Semantics::AtomInjective));
        assert!(!eval_contains(&query, &g, &[u, w], Semantics::QueryInjective));
        // st = a-inj on G:
        let st = eval_tuples(&query, &g, Semantics::Standard);
        let ainj = eval_tuples(&query, &g, Semantics::AtomInjective);
        assert_eq!(st, ainj);
    }

    #[test]
    fn example_2_1_graph_gprime() {
        let mut g = example21_gprime();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        let (u, v) = (node(&g, "u"), node(&g, "v"));
        // (u, v) ∈ st (walk u a w b t a u b v + c edge back) but ∉ a-inj
        // (every (ab)^k path u→v repeats u).
        assert!(eval_contains(&query, &g, &[u, v], Semantics::Standard));
        assert!(!eval_contains(&query, &g, &[u, v], Semantics::AtomInjective));
    }

    #[test]
    fn diagonal_pairs_from_epsilon() {
        // Both languages contain ε, so (n, n) holds for every node under all
        // semantics via the collapsed variant.
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        for n in g.nodes() {
            for sem in Semantics::ALL {
                assert!(eval_contains(&query, &g, &[n, n], sem), "({n:?},{n:?}) under {sem}");
            }
        }
    }

    #[test]
    fn intro_example_atom_injective() {
        // §1: Q = ∃x,y,z x -(a+b)+-> y ∧ x -(b+c)+-> z holds on a b-path
        // under a-inj (overlapping paths allowed).
        let mut g = graph(&[("n0", "b", "n1"), ("n1", "b", "n2")]);
        let query = q(
            "x -[(a+b)(a+b)*]-> y, x -[(b+c)(b+c)*]-> z",
            &mut g,
        );
        assert!(eval_boolean(&query, &g, Semantics::Standard));
        assert!(eval_boolean(&query, &g, Semantics::AtomInjective));
        // Under q-inj the two paths must be internally disjoint; on a single
        // b-path they can still be chosen as prefixes of different length
        // (e.g. y=n1, z=n2: paths n0→n1 and n0→n1→n2 share internal? path1
        // has no internal, path2 has internal n1 = image of y → blocked).
        // y=n1 (path n0-b->n1), z=n2 needs n0→n2 with internal n1 which is
        // μ(y): forbidden. Swapping roles is symmetric; y=z impossible
        // (injective). Hence q-inj fails.
        assert!(!eval_boolean(&query, &g, Semantics::QueryInjective));
    }

    #[test]
    fn query_injective_on_disjoint_branches() {
        // Two node-disjoint b/c branches from the root: q-inj succeeds.
        let mut g = graph(&[("r", "b", "p1"), ("p1", "b", "p2"), ("r", "c", "q1")]);
        let query = q("x -[(a+b)(a+b)*]-> y, x -[(b+c)(b+c)*]-> z", &mut g);
        assert!(eval_boolean(&query, &g, Semantics::QueryInjective));
    }

    #[test]
    fn self_loop_atom_semantics() {
        // x -[a a]-> x requires a simple 2-cycle under injective semantics;
        // a self-loop a-edge only yields the 1-cycle "a".
        let mut g = graph(&[("u", "a", "v"), ("v", "a", "u")]);
        let query = q("x -[a a]-> x", &mut g);
        for sem in Semantics::ALL {
            assert!(eval_boolean(&query, &g, sem), "2-cycle exists under {sem}");
        }
        let mut g2 = graph(&[("u", "a", "u")]);
        let query2 = q("x -[a a]-> x", &mut g2);
        assert!(eval_boolean(&query2, &g2, Semantics::Standard), "loop twice");
        assert!(!eval_boolean(&query2, &g2, Semantics::AtomInjective), "aa is not a simple cycle on a self-loop");
        assert!(!eval_boolean(&query2, &g2, Semantics::QueryInjective));
    }

    #[test]
    fn distinct_vars_same_node_standard_only() {
        // Q(x,y) = x -a-> y with tuple (u, u): needs a-loop at u.
        let mut g = graph(&[("u", "a", "u"), ("u", "a", "v")]);
        let query = q("(x, y) <- x -[a]-> y", &mut g);
        let u = node(&g, "u");
        assert!(eval_contains(&query, &g, &[u, u], Semantics::Standard));
        // a-inj: path from u to u must be simple, i.e. empty — but `a` is not ε.
        assert!(!eval_contains(&query, &g, &[u, u], Semantics::AtomInjective));
        // q-inj additionally needs μ injective: x≠y map to same node — no.
        assert!(!eval_contains(&query, &g, &[u, u], Semantics::QueryInjective));
    }

    #[test]
    fn tuple_enumeration_matches_membership() {
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        for sem in Semantics::ALL {
            let tuples = eval_tuples(&query, &g, sem);
            for n1 in g.nodes() {
                for n2 in g.nodes() {
                    let member = eval_contains(&query, &g, &[n1, n2], sem);
                    assert_eq!(tuples.contains(&vec![n1, n2]), member, "{n1:?},{n2:?} {sem}");
                }
            }
        }
    }

    #[test]
    fn boolean_query_with_no_atoms() {
        let mut g = graph(&[("u", "a", "v")]);
        let query = q("(x) <- true", &mut g);
        let tuples = eval_tuples(&query, &g, Semantics::QueryInjective);
        assert_eq!(tuples.len(), g.num_nodes());
    }

    #[test]
    fn empty_graph_rejects_atoms() {
        let mut b = GraphBuilder::new();
        b.node("only");
        let mut g = b.finish();
        let query = q("x -[a]-> y", &mut g);
        for sem in Semantics::ALL {
            assert!(!eval_boolean(&query, &g, sem));
        }
    }

    #[test]
    fn analyzed_evaluator_agrees_with_exact() {
        // a* and (a b)* atoms: the first is deletion-closed (fast path),
        // the second is not; results must coincide with the exact engine.
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        for sem in Semantics::ALL {
            assert_eq!(
                eval_tuples(&query, &g, sem),
                eval_tuples_analyzed(&query, &g, sem),
                "analyzed engine must agree under {sem}"
            );
        }
    }

    #[test]
    fn fast_path_is_exact_on_parity_trap() {
        // Walk witnesses exist for a* even where simple-path search must
        // prune: a graph with a long detour through a revisited hub.
        let mut g = graph(&[
            ("s", "a", "h"),
            ("h", "a", "m"),
            ("m", "a", "h"),
            ("h", "a", "t"),
        ]);
        let query = q("(x, y) <- x -[a a*]-> y", &mut g);
        let (s, t) = (node(&g, "s"), node(&g, "t"));
        assert!(eval_contains(&query, &g, &[s, t], Semantics::AtomInjective));
        assert!(eval_contains_analyzed(&query, &g, &[s, t], Semantics::AtomInjective));
        // (a a)* is NOT deletion-closed: no fast path, and the parity
        // matters — s →a→ h →a→ t is the only simple even path... of length
        // 2, which exists; extend the trap so only odd simple paths exist.
        let query2 = q("(x, y) <- x -[(a a)*]-> y", &mut g);
        assert_eq!(
            eval_contains(&query2, &g, &[s, t], Semantics::AtomInjective),
            eval_contains_analyzed(&query2, &g, &[s, t], Semantics::AtomInjective),
        );
    }

    #[test]
    fn hierarchy_inclusion_on_examples() {
        for mut g in [example21_g(), example21_gprime()] {
            let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
            let st = eval_tuples(&query, &g, Semantics::Standard);
            let ai = eval_tuples(&query, &g, Semantics::AtomInjective);
            let qi = eval_tuples(&query, &g, Semantics::QueryInjective);
            for t in &qi {
                assert!(ai.contains(t), "q-inj ⊆ a-inj violated at {t:?}");
            }
            for t in &ai {
                assert!(st.contains(t), "a-inj ⊆ st violated at {t:?}");
            }
        }
    }
}
