//! Direct evaluation of CRPQs under the three semantics (§2.1).
//!
//! # Graphs are read through [`GraphView`]
//!
//! Every entry point is generic over `G: `[`GraphView`] — the read-only
//! trait from `crpq_graph` whose contract (ascending per-label iterators,
//! node-major `(label, node)` order, post-build labels read as empty) is
//! documented in `crpq_graph::view`. Frozen [`GraphDb`]s monomorphise to
//! the original CSR-slice loops at zero cost; `DeltaGraph` overlays run
//! the identical algorithms over the base+delta merge. An evaluation
//! borrows `&G` for its whole run, so it always observes one consistent
//! snapshot.
//!
//! # The footprint invariant under mutation
//!
//! The [`RelationCatalog`] caches materialised atom relations across
//! queries, and each entry records its NFA's **label footprint** (the
//! alphabet symbols the compiled automaton can read). The invariant that
//! keeps the cache sound on a mutable graph: *a cached relation is
//! invalidated by a mutation to label `ℓ` iff `ℓ` is in its footprint* —
//! an RPQ relation is a function of exactly the edges whose labels its NFA
//! mentions, so disjoint-footprint entries stay byte-for-byte valid and
//! keep serving hits. Owners of a mutable graph call
//! [`RelationCatalog::invalidate_label`] after each batch of mutations to
//! a label (or [`RelationCatalog::rebind`] when the node universe
//! changes); see the catalog's own docs for the slot-reuse mechanics and
//! the eviction counters the benchmarks assert on.
//!
//! # Planner / executor architecture
//!
//! Injective semantics force evaluating every ε-free variant of a query
//! ([`Crpq::epsilon_free_union`]) — and ε-elimination copies most atoms
//! *verbatim* into every variant, so a k-variant query used to pay for the
//! same relation k times. Evaluation is therefore split into two phases:
//!
//! * **Planning** ([`plan_variant`]): each variant's atoms are compiled and
//!   resolved against a [`RelationCatalog`] — a per-graph store of
//!   materialised atom relations keyed by the *canonical structural key* of
//!   the compiled NFA ([`crpq_automata::Nfa::canonical_key`]). The first
//!   atom with a given key materialises its relation (a catalog **miss**);
//!   every later occurrence — across variants, across semantics, across
//!   repeated `eval_tuples` calls sharing the catalog — reuses it (a
//!   **hit**). Hit/miss counters and materialisation wall clock are
//!   exposed for tests and benchmarks.
//! * **Execution** ([`JoinPlan`]): the per-variant join *borrows* catalog
//!   entries instead of owning relations, prunes domains and runs one of
//!   two executors, picked per variant by shape (see below).
//!
//! # Executor dispatch: cyclic shapes go worst-case-optimal
//!
//! Two join executors sit behind the planner:
//!
//! * the **backtracking binary join** ([`JoinPlan::search_all`]) —
//!   selectivity-ordered variable assignment with domain-clone +
//!   row-intersection candidate generation; and
//! * the **worst-case-optimal join** ([`crate::wcoj`]) — a Generic-Join
//!   style executor that binds one variable at a time along a fixed
//!   elimination order, enumerating each variable's candidates by
//!   *leapfrog intersection* of sorted views (the pruned domain plus every
//!   incident relation row restricted by the bound neighbours), so the
//!   per-candidate cost tracks the **smallest** participating view instead
//!   of the domain size.
//!
//! Dispatch is structural ([`JoinPlan::is_cyclic`]): a variant whose
//! atom–variable incidence graph contains a **cycle** — a connected
//! component with at least as many (non-self-loop) atoms as variables,
//! which includes parallel atoms between the same variable pair — is run
//! through the WCOJ executor; acyclic (forest-shaped) variants keep the
//! backtracking join, whose dynamic fewest-candidates ordering is already
//! near-optimal there. The rationale is the AGM bound: on cyclic shapes
//! (triangle, 4-cycle, diamond-with-chord, …) any binary join plan can
//! produce asymptotically more intermediate bindings than the output size
//! (`O(|R|²)` vs `O(|R|^{3/2})` on the triangle), while Generic Join's
//! per-variable intersection is worst-case optimal. Self-loop atoms
//! (`x -L-> x`) are folded into the domains at plan-build time and close
//! no cycle. Both executors share [`RelationCatalog`] materialisation,
//! semi-join pruning, the duplicate-projection prune and the per-semantics
//! [`VerifyScratch`] verification, and [`EvalStrategy`] can force either
//! executor for differential testing and benchmarks.
//!
//! Relations themselves use density-adaptive rows
//! ([`crpq_graph::rpq::RelationRow`]: sorted-`u32` sparse vs. bitset
//! dense), and the catalog can materialise with the per-source BFS sweeps
//! partitioned across scoped threads
//! ([`crpq_graph::rpq::rpq_relation_parallel`]).
//!
//! # Two engines
//!
//! **Join-based (default, [`eval_tuples`]).** The engine works per ε-free
//! variant in a relation-first pipeline:
//!
//! 1. **Relation materialisation** — every *distinct* atom's full
//!    standard-semantics RPQ relation is computed in one multi-source
//!    product BFS over the label-indexed CSR graph
//!    ([`crpq_graph::rpq::rpq_relation`]), indexed both ways
//!    (`forward(u)` / `backward(v)` rows) and cached in the
//!    [`RelationCatalog`].
//! 2. **Semi-join pruning** — per-variable candidate domains start at `V`
//!    and are intersected with atom source/target sets, then shrunk to a
//!    fixpoint: a node stays in `dom(x)` only while every atom incident to
//!    `x` can still be matched inside the current domains.
//! 3. **Selectivity-ordered join** — backtracking assigns the unassigned
//!    variable with the fewest remaining candidates first (candidates =
//!    pruned domain ∩ relation rows of already-assigned neighbours), so the
//!    join tree stays narrow.
//! 4. **Per-semantics verification** — the relations are *exact* for `st`,
//!    so a join solution is a result. For `a-inj`/`q-inj` they are a sound
//!    over-approximation (every simple path is a path): each join solution
//!    is verified by simple-path / simple-cycle search, or the jointly
//!    disjoint placement of [`place_atoms`] under `q-inj`. Subtrees whose
//!    free-variable projection is already in the result set are pruned —
//!    only existential variables could still vary there.
//!
//! **Enumeration oracle ([`eval_tuples_enumerate`], legacy).** Enumerates
//! all `|V|^arity` candidate tuples and decides membership per tuple. Kept
//! behind [`EvalStrategy`] as the differential-testing oracle for the join
//! engine and as the baseline of the `BENCH_eval` measurements.
//!
//! Membership tests ([`eval_contains`]) backtrack over variable assignments
//! with (exact-for-standard, sound-for-injective) RPQ reachability pruning;
//! fully assigned tuples are then verified per semantics:
//!
//! * `st` — reachability pruning is already exact, nothing to re-check;
//! * `a-inj` — each atom re-checked with a simple-path (or simple-cycle)
//!   search, independently per atom;
//! * `q-inj` — assignments are generated injectively and atoms are *placed*
//!   one by one, accumulating the set of used nodes so paths stay internally
//!   disjoint (backtracking across atoms).
//!
//! # Streaming enumeration: the sink contract
//!
//! Both executors emit results through a [`TupleSink`] rather than a
//! concrete set, and the sink steers the search: `insert_tuple` returns a
//! [`SinkStatus`] and `should_stop` is re-checked at every search-tree
//! node, so a sink can end the enumeration early — after the first witness
//! ([`eval_ask`]), after `k` tuples ([`eval_limit`]), or when a streaming
//! consumer hangs up ([`crate::stream::eval_stream`]). The contract: once a
//! sink returns [`SinkStatus::Stop`] (or starts reporting `should_stop`),
//! every executor — the backtracking join, the WCOJ executor
//! ([`crate::wcoj`]) and the work-stealing scheduler ([`crate::parallel`],
//! via a shared cancellation flag) — unwinds without inserting further
//! tuples; a parallel worker may at most finish verifying the candidate it
//! was already on, so overshoot is bounded by the worker count.
//! Full-materialisation sinks never stop, which keeps [`eval_tuples`]
//! byte-identical to the pre-streaming engine.
//!
//! # Inline injective verification
//!
//! Under `a-inj`/`q-inj` the relations over-approximate, and verification
//! used to run post-hoc on complete assignments only — rejected candidates
//! are exactly what stalls a stream. The search now also prunes at **bind
//! time** ([`JoinPlan::bind_allowed`]): binding a node immediately checks
//! every incident atom whose other endpoint is already bound for per-atom
//! simple-path/-cycle feasibility, memoised per plan in [`VerifyScratch`].
//! Under `a-inj` the check is exact per atom; under `q-inj` it is a sound
//! *necessary* condition (the joint placement blocks at least as many
//! nodes as the empty blocked set). The pruning invariant: `bind_allowed`
//! only rejects assignments no completion of which could verify, so pruned
//! and unpruned searches emit the same tuple set — differentially tested
//! in `tests/stream_equivalence.rs`.

use crpq_automata::{Nfa, NfaKey};
use crpq_graph::rpq::{NodeSet, ReachScratch, Relation, RelationRow};
use crpq_graph::{rpq, GraphView, NodeId};
use crpq_query::{Crpq, Var};
use crpq_util::{BitSet, FxHashMap, FxHashSet, Symbol};
use std::collections::BTreeSet;
use std::ops::ControlFlow;
use std::time::Instant;

/// The three semantics of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Semantics {
    /// Arbitrary paths (`Q(G)_st`).
    Standard,
    /// Simple paths per atom (`Q(G)_a-inj`).
    AtomInjective,
    /// Injective assignment + internally disjoint simple paths (`Q(G)_q-inj`).
    QueryInjective,
}

impl Semantics {
    /// All three semantics, in hierarchy order (most restrictive last).
    pub const ALL: [Semantics; 3] = [
        Semantics::Standard,
        Semantics::AtomInjective,
        Semantics::QueryInjective,
    ];

    /// Short name as used in the paper.
    pub fn short_name(self) -> &'static str {
        match self {
            Semantics::Standard => "st",
            Semantics::AtomInjective => "a-inj",
            Semantics::QueryInjective => "q-inj",
        }
    }
}

impl std::fmt::Display for Semantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Which full-result engine [`eval_tuples_with`] runs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EvalStrategy {
    /// Relation-first semi-join pipeline with per-variant executor
    /// dispatch: worst-case-optimal join on cyclic variant shapes,
    /// backtracking binary join on acyclic ones (the default engine; see
    /// the module docs).
    #[default]
    Join,
    /// The semi-join pipeline with the backtracking binary join forced on
    /// every variant shape — the pre-WCOJ behaviour, kept addressable for
    /// differential tests and the `BENCH_eval` WCOJ-vs-binary comparison.
    BinaryJoin,
    /// The semi-join pipeline with the worst-case-optimal executor forced
    /// on every variant shape (leapfrog intersection also handles acyclic
    /// shapes, just without the dynamic variable ordering).
    Wcoj,
    /// Legacy `|V|^arity` tuple-space enumeration — the differential-testing
    /// oracle and benchmark baseline.
    Enumerate,
}

/// Internal executor selector threaded through the catalog-backed join
/// driver (the join-shaped strategies of [`EvalStrategy`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) enum JoinMode {
    /// Per-variant structural dispatch ([`JoinPlan::is_cyclic`]).
    #[default]
    Auto,
    /// Force the backtracking binary join.
    Binary,
    /// Force the worst-case-optimal executor.
    Wcoj,
}

/// Whether `tuple ∈ Q(G)_sem`.
pub fn eval_contains<G: GraphView>(q: &Crpq, g: &G, tuple: &[NodeId], sem: Semantics) -> bool {
    assert_eq!(
        q.free.len(),
        tuple.len(),
        "tuple arity must match free tuple"
    );
    q.epsilon_free_union()
        .iter()
        .any(|variant| VariantEval::new(variant, g, sem).contains(tuple))
}

/// Like [`eval_contains`], but first classifies every atom language
/// ([`crpq_automata::tractability`]) and routes **factor-deletion-closed**
/// atoms through polynomial arbitrary-path reachability under
/// atom-injective semantics.
///
/// This is sound and complete by the loop-pruning lemma: for a
/// deletion-closed language, a walk witness can be pruned to a simple path
/// whose label stays in the language, so the (NP-hard in general)
/// simple-path check degenerates to reachability — the executable content
/// of the tractable side of the trichotomy the paper cites as [3].
pub fn eval_contains_analyzed<G: GraphView>(
    q: &Crpq,
    g: &G,
    tuple: &[NodeId],
    sem: Semantics,
) -> bool {
    assert_eq!(
        q.free.len(),
        tuple.len(),
        "tuple arity must match free tuple"
    );
    q.epsilon_free_union()
        .iter()
        .any(|variant| VariantEval::new_analyzed(variant, g, sem).contains(tuple))
}

/// Whether the Boolean query holds: `Q(G)_sem ≠ ∅` (for Boolean `Q` this is
/// membership of the empty tuple).
pub fn eval_boolean<G: GraphView>(q: &Crpq, g: &G, sem: Semantics) -> bool {
    assert!(q.is_boolean(), "eval_boolean requires a Boolean query");
    eval_contains(q, g, &[], sem)
}

/// The full result set `Q(G)_sem`, sorted and deduplicated — join-based
/// engine (see the module docs for the pipeline).
pub fn eval_tuples<G: GraphView>(q: &Crpq, g: &G, sem: Semantics) -> Vec<Vec<NodeId>> {
    eval_tuples_with(q, g, sem, EvalStrategy::Join)
}

/// [`eval_tuples`] with the deletion-closed fast path of
/// [`eval_contains_analyzed`].
pub fn eval_tuples_analyzed<G: GraphView>(q: &Crpq, g: &G, sem: Semantics) -> Vec<Vec<NodeId>> {
    eval_tuples_join(
        q,
        g,
        sem,
        true,
        &mut RelationCatalog::new(g),
        JoinMode::Auto,
    )
}

/// The full result set computed by the chosen engine. Both strategies
/// return exactly the same set — property-tested in
/// `tests/join_equivalence.rs` and `tests/catalog_equivalence.rs` — which
/// is what keeps the legacy enumerator useful as an oracle.
pub fn eval_tuples_with<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    strategy: EvalStrategy,
) -> Vec<Vec<NodeId>> {
    let mode = match strategy {
        EvalStrategy::Join => JoinMode::Auto,
        EvalStrategy::BinaryJoin => JoinMode::Binary,
        EvalStrategy::Wcoj => JoinMode::Wcoj,
        EvalStrategy::Enumerate => return eval_tuples_enumerate(q, g, sem),
    };
    eval_tuples_join(q, g, sem, false, &mut RelationCatalog::new(g), mode)
}

/// [`eval_tuples`] against a caller-owned [`RelationCatalog`], so repeated
/// evaluations on the same graph (other queries sharing atoms, other
/// semantics, re-runs) reuse every relation materialised so far.
pub fn eval_tuples_with_catalog<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    catalog: &mut RelationCatalog,
) -> Vec<Vec<NodeId>> {
    eval_tuples_join(q, g, sem, false, catalog, JoinMode::Auto)
}

/// The catalog-backed join driver: plan every variant first (materialising
/// each distinct atom relation once), then execute the per-variant joins
/// against the frozen catalog — each variant through the executor `mode`
/// selects (under [`JoinMode::Auto`], WCOJ on cyclic shapes, backtracking
/// join on acyclic ones).
fn eval_tuples_join<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    analyze: bool,
    catalog: &mut RelationCatalog,
    mode: JoinMode,
) -> Vec<Vec<NodeId>> {
    let mut out = FxHashSet::default();
    eval_sink_join(q, g, sem, analyze, catalog, mode, &mut out);
    sorted_tuples(out)
}

/// The sink-driven core of the sequential join engine: runs every ε-free
/// variant against `out`, honouring the sink's stop signal between and
/// inside variants. [`eval_tuples_join`] feeds it a never-stopping hash
/// set; [`eval_ask`]/[`eval_limit`] a [`LimitSink`]; [`crate::stream`] a
/// channel-backed sink.
pub(crate) fn eval_sink_join<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    analyze: bool,
    catalog: &mut RelationCatalog,
    mode: JoinMode,
    out: &mut dyn TupleSink,
) -> SinkStatus {
    let variants = q.epsilon_free_union();
    let plans: Vec<VariantPlan> = variants
        .iter()
        .map(|v| plan_variant(v, g, analyze, catalog))
        .collect();
    let mut scratch = VerifyScratch::new();
    for (variant, plan) in variants.iter().zip(plans) {
        if out.should_stop() {
            return SinkStatus::Stop;
        }
        let plan = JoinPlan::build(variant, g, sem, plan, catalog);
        let status = if plan.use_wcoj(mode) {
            crate::wcoj::search_all(&plan, &mut scratch, out)
        } else {
            plan.search_all(&mut scratch, out)
        };
        if status == SinkStatus::Stop {
            return SinkStatus::Stop;
        }
    }
    SinkStatus::Continue
}

/// `ASK` fast path: whether `Q(G)_sem ≠ ∅`, stopping the join search at
/// the **first verified witness** instead of materialising the result set.
/// Works for Boolean and non-Boolean queries alike (for the latter it asks
/// whether any result tuple exists).
pub fn eval_ask<G: GraphView>(q: &Crpq, g: &G, sem: Semantics) -> bool {
    eval_ask_with_catalog(q, g, sem, &mut RelationCatalog::new(g))
}

/// [`eval_ask`] against a caller-owned catalog, so a warm catalog skips
/// relation materialisation entirely (the time-to-first-tuple measurement
/// of `BENCH_eval`).
pub fn eval_ask_with_catalog<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    catalog: &mut RelationCatalog,
) -> bool {
    let mut sink = LimitSink::new(1);
    eval_sink_join(q, g, sem, false, catalog, JoinMode::Auto, &mut sink);
    !sink.is_empty()
}

/// `LIMIT k` fast path: at most `k` distinct result tuples, stopping the
/// search as soon as the k-th is found. The returned tuples are a subset
/// of [`eval_tuples`]' result (sorted among themselves); *which* subset is
/// unspecified — it depends on search order, like any engine's unordered
/// `LIMIT`.
pub fn eval_limit<G: GraphView>(q: &Crpq, g: &G, sem: Semantics, k: usize) -> Vec<Vec<NodeId>> {
    eval_limit_with_catalog(q, g, sem, k, &mut RelationCatalog::new(g))
}

/// [`eval_limit`] under a forced [`EvalStrategy`] — the differential-test
/// entry point. `Enumerate` truncates the materialised oracle result (its
/// first `k` in sorted order), the join strategies stop the search early.
pub fn eval_limit_with<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    k: usize,
    strategy: EvalStrategy,
) -> Vec<Vec<NodeId>> {
    let mode = match strategy {
        EvalStrategy::Join => JoinMode::Auto,
        EvalStrategy::BinaryJoin => JoinMode::Binary,
        EvalStrategy::Wcoj => JoinMode::Wcoj,
        EvalStrategy::Enumerate => {
            let mut all = eval_tuples_enumerate(q, g, sem);
            all.truncate(k);
            return all;
        }
    };
    if k == 0 {
        return Vec::new();
    }
    let mut sink = LimitSink::new(k);
    eval_sink_join(
        q,
        g,
        sem,
        false,
        &mut RelationCatalog::new(g),
        mode,
        &mut sink,
    );
    sorted_tuples(sink.into_tuples())
}

/// [`eval_limit`] against a caller-owned catalog (see
/// [`eval_ask_with_catalog`]).
pub fn eval_limit_with_catalog<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
    k: usize,
    catalog: &mut RelationCatalog,
) -> Vec<Vec<NodeId>> {
    if k == 0 {
        return Vec::new();
    }
    let mut sink = LimitSink::new(k);
    eval_sink_join(q, g, sem, false, catalog, JoinMode::Auto, &mut sink);
    sorted_tuples(sink.into_tuples())
}

/// Sorts a deduplicated tuple set into the engines' canonical output
/// order. The join engine accumulates into a hash set (insert and
/// projection-prune lookups are much cheaper than a `BTreeSet` of boxed
/// tuples) and pays for ordering once at the end.
pub(crate) fn sorted_tuples(out: FxHashSet<Vec<NodeId>>) -> Vec<Vec<NodeId>> {
    let mut tuples: Vec<Vec<NodeId>> = out.into_iter().collect();
    tuples.sort_unstable();
    tuples
}

/// `ControlFlow`-style steering signal a [`TupleSink`] hands back to the
/// executors: [`SinkStatus::Stop`] unwinds the search without inserting
/// further tuples (see the module docs for the full contract).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SinkStatus {
    /// Keep enumerating.
    Continue,
    /// The sink has everything it wants — unwind the search.
    Stop,
}

/// Result-set abstraction for the join search, so the production engine
/// can accumulate into a hash set while [`eval_tuples_join_unshared`]
/// keeps the PR-1 `BTreeSet` accumulation it is meant to replicate — and
/// so early-exit sinks ([`LimitSink`], the streaming sink of
/// [`crate::stream`], the cancellation-aware worker sinks of
/// [`crate::parallel`]) can end the enumeration from inside the search.
///
/// Contract: after `insert_tuple` returns [`SinkStatus::Stop`],
/// `should_stop` must keep returning `true`; executors re-check it at
/// every search-tree node, so a stopped sink is never descended past.
pub(crate) trait TupleSink {
    /// Whether the projection is already a known result.
    fn contains_tuple(&self, t: &[NodeId]) -> bool;
    /// Records a verified result projection; [`SinkStatus::Stop`] ends the
    /// enumeration.
    fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus;
    /// Whether the search should unwind before doing more work. Checked at
    /// search-node entry (and per candidate by the parallel driver), so a
    /// stop decision made elsewhere — another worker, a hung-up stream
    /// consumer — propagates promptly.
    fn should_stop(&self) -> bool {
        false
    }
}

impl TupleSink for FxHashSet<Vec<NodeId>> {
    fn contains_tuple(&self, t: &[NodeId]) -> bool {
        self.contains(t)
    }
    fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus {
        self.insert(t);
        SinkStatus::Continue
    }
}

impl TupleSink for BTreeSet<Vec<NodeId>> {
    fn contains_tuple(&self, t: &[NodeId]) -> bool {
        self.contains(t)
    }
    fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus {
        self.insert(t);
        SinkStatus::Continue
    }
}

/// Early-exit sink behind [`eval_ask`] and [`eval_limit`]: accumulates at
/// most `limit` distinct tuples, then stops the search. The length never
/// exceeds `limit` even with racing parallel workers — an insert against a
/// full sink is refused (and answered with [`SinkStatus::Stop`]).
pub(crate) struct LimitSink {
    seen: FxHashSet<Vec<NodeId>>,
    limit: usize,
}

impl LimitSink {
    pub(crate) fn new(limit: usize) -> Self {
        LimitSink {
            seen: FxHashSet::default(),
            limit,
        }
    }

    /// The collected tuples (≤ `limit` of them).
    pub(crate) fn into_tuples(self) -> FxHashSet<Vec<NodeId>> {
        self.seen
    }

    /// Whether any tuple was collected.
    pub(crate) fn is_empty(&self) -> bool {
        self.seen.is_empty()
    }
}

impl TupleSink for LimitSink {
    fn contains_tuple(&self, t: &[NodeId]) -> bool {
        self.seen.contains(t)
    }
    fn insert_tuple(&mut self, t: Vec<NodeId>) -> SinkStatus {
        if self.seen.len() >= self.limit {
            return SinkStatus::Stop;
        }
        self.seen.insert(t);
        if self.seen.len() >= self.limit {
            SinkStatus::Stop
        } else {
            SinkStatus::Continue
        }
    }
    fn should_stop(&self) -> bool {
        self.seen.len() >= self.limit
    }
}

/// The **pre-catalog measurement baseline**: evaluates like the original
/// (PR 1) flat join engine — every variant rebuilds its atom relations
/// from scratch with sequential per-source sweeps into unconditionally
/// dense rows, no cross-variant sharing. Exists so the benchmark suite can
/// quantify what the planner layer buys on multi-variant queries; not
/// meant for production callers.
pub fn eval_tuples_join_unshared<G: GraphView>(
    q: &Crpq,
    g: &G,
    sem: Semantics,
) -> Vec<Vec<NodeId>> {
    // PR 1 accumulated straight into a `BTreeSet` of tuples; keep that
    // here so the baseline's result handling costs what the old engine's
    // did.
    let mut out: BTreeSet<Vec<NodeId>> = BTreeSet::new();
    let mut scratch = VerifyScratch::new();
    for variant in &q.epsilon_free_union() {
        let mut catalog = RelationCatalog::pr1_baseline(g);
        let plan = plan_variant(variant, g, false, &mut catalog);
        JoinPlan::build(variant, g, sem, plan, &catalog).search_all(&mut scratch, &mut out);
    }
    out.into_iter().collect()
}

/// Legacy full-result engine: `|V|^arity` candidate tuples, one membership
/// test each. Retained as the differential-testing oracle for the join
/// engine and as the `BENCH_eval` baseline.
pub fn eval_tuples_enumerate<G: GraphView>(q: &Crpq, g: &G, sem: Semantics) -> Vec<Vec<NodeId>> {
    let mut out = BTreeSet::new();
    let variants = q.epsilon_free_union();
    // One evaluator per variant, shared across candidate tuples so the
    // reachability caches amortise.
    let mut evals: Vec<VariantEval<G>> = variants
        .iter()
        .map(|v| VariantEval::new(v, g, sem))
        .collect();
    let arity = q.free.len();
    let mut tuple = vec![NodeId(0); arity];
    enumerate_tuples(g, &mut tuple, 0, &mut |tuple: &[NodeId]| {
        if evals.iter_mut().any(|e| e.contains(tuple)) {
            out.insert(tuple.to_vec());
        }
    });
    out.into_iter().collect()
}

/// Alias for [`eval_tuples`] (the general entry point).
pub fn eval<G: GraphView>(q: &Crpq, g: &G, sem: Semantics) -> Vec<Vec<NodeId>> {
    eval_tuples(q, g, sem)
}

/// Whether `tuple ∈ (Q₁ ∨ … ∨ Qₖ)(G)_sem` — union semantics is the union
/// of branch results.
pub fn eval_contains_union<G: GraphView>(
    u: &crpq_query::UnionCrpq,
    g: &G,
    tuple: &[NodeId],
    sem: Semantics,
) -> bool {
    u.branches.iter().any(|q| eval_contains(q, g, tuple, sem))
}

fn enumerate_tuples<G: GraphView, F: FnMut(&[NodeId])>(
    g: &G,
    tuple: &mut Vec<NodeId>,
    pos: usize,
    f: &mut F,
) {
    if pos == tuple.len() {
        f(tuple);
        return;
    }
    for v in (0..g.num_nodes()).map(|v| NodeId(v as u32)) {
        tuple[pos] = v;
        enumerate_tuples(g, tuple, pos + 1, f);
    }
}

pub(crate) struct CompiledAtom {
    pub(crate) src: Var,
    pub(crate) dst: Var,
    nfa: Nfa,
    nfa_rev: Nfa,
    /// `ε`-freeness is guaranteed upstream; kept as a debug invariant.
    accepts_epsilon: bool,
    /// Whether the language is factor-deletion closed (only computed under
    /// `analyze`): enables the polynomial reachability fast path for
    /// atom-injective checks.
    deletion_closed: bool,
}

fn compile_atoms(variant: &Crpq, analyze: bool) -> Vec<CompiledAtom> {
    variant
        .atoms
        .iter()
        .map(|a| {
            let nfa = a.nfa();
            debug_assert!(!nfa.accepts_epsilon(), "variants must be ε-free");
            let deletion_closed =
                analyze && crpq_automata::tractability::deletion_closed(&nfa, &nfa.symbols());
            CompiledAtom {
                src: a.src,
                dst: a.dst,
                nfa_rev: nfa.reverse(),
                accepts_epsilon: nfa.accepts_epsilon(),
                deletion_closed,
                nfa,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Planner layer: relation catalog + per-variant plans
// ---------------------------------------------------------------------------

/// How a [`RelationCatalog`] materialises a relation on a miss.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
enum MaterialiseMode {
    /// Cost-adaptive ([`rpq::rpq_relation_auto`]): per-source sweeps with
    /// sampled cost observation, switching to the condensation bitset
    /// closure on dense products; per-source sweeps partition across
    /// scoped threads when more than one is configured.
    #[default]
    Auto,
    /// Faithful PR-1 reproduction (per-source BFS, unconditionally dense
    /// rows, sequential) — the `BENCH_eval` measurement baseline.
    Pr1Baseline,
}

/// Per-graph store of materialised atom relations, keyed by the canonical
/// structural key of the atom's compiled NFA.
///
/// The catalog is the unit of sharing in the planner: a k-variant query
/// whose variants repeat the same atom language materialises that
/// relation **once** (one miss, k−1 hits) instead of k times, and a
/// caller-owned catalog extends the sharing across queries and repeated
/// evaluations on the same graph. A miss materialises cost-adaptively
/// ([`rpq::rpq_relation_auto`]): per-source BFS sweeps by default, with a
/// sampled cost probe that escalates to the condensation bitset closure
/// ([`rpq::rpq_relation_closure`]) on dense products where per-source
/// exploration would be quadratically wasteful (the closure is
/// column-blocked, so its reach matrix stays within a fixed working-set
/// budget at any product size). Sweeps run sequentially
/// with a pooled [`ReachScratch`] by default and partition across scoped
/// threads when built via [`RelationCatalog::with_threads`].
///
/// # Label-footprint invalidation under mutation
///
/// The catalog is correct across **edge mutations** of its bound graph
/// (a [`crpq_graph::DeltaGraph`]) through footprint-keyed eviction: every
/// entry records the alphabet of its NFA at insert, and an atom relation
/// depends only on edges carrying labels in that alphabet. After mutating
/// edges with label `ℓ`, calling [`Self::invalidate_label`]`(ℓ)` evicts
/// exactly the entries whose footprint mentions `ℓ` — everything else
/// remains a valid cache hit (the invariant the differential suite
/// `tests/delta_equivalence.rs` counter-asserts). Node additions change
/// the universe every relation is sized by, so they require a full
/// [`Self::rebind`]. Labels interned *after* a relation was cached cannot
/// appear in its footprint, hence need no eviction path of their own.
pub struct RelationCatalog {
    /// Node count of the graph this catalog is bound to (O(1) misuse
    /// guard on every lookup).
    num_nodes: usize,
    /// Sampled structural fingerprint of the bound graph (debug-build
    /// misuse guard: a catalog must never serve relations for a different
    /// graph with the same node count).
    fingerprint: u64,
    index: FxHashMap<NfaKey, usize>,
    relations: Vec<Relation>,
    /// `footprints[slot]` = sorted alphabet of the NFA whose relation
    /// occupies `slot` — the eviction key of [`Self::invalidate_label`].
    footprints: Vec<Vec<Symbol>>,
    /// Slots vacated by eviction, reused by the next materialisation.
    free_slots: Vec<usize>,
    /// The bound graph mutated since the fingerprint was last sampled
    /// (set by the invalidation entry points, which have no `&G` in hand);
    /// the next lookup re-samples instead of tripping the misuse guard.
    fingerprint_stale: bool,
    scratch: ReachScratch,
    threads: usize,
    mode: MaterialiseMode,
    hits: usize,
    misses: usize,
    /// Entries evicted by [`Self::invalidate_label`] /
    /// [`Self::invalidate_all`] / [`Self::rebind`] — surfaced in the
    /// `--mutate-smoke` bench rows.
    evictions: usize,
    materialise_ms: f64,
    /// Largest per-materialisation sweep-scratch footprint seen so far
    /// (stamp arrays + sparse visited maps, summed across workers) — the
    /// `scratch_bytes` observable of the scale benchmarks.
    peak_scratch_bytes: usize,
}

impl RelationCatalog {
    /// An empty catalog for `g`, materialising on a single thread.
    pub fn new<G: GraphView>(g: &G) -> Self {
        Self::with_threads(g, 1)
    }

    /// An empty catalog for `g` whose per-source BFS sweeps partition
    /// across `threads` scoped threads (`0` = one per available CPU,
    /// capped at 16); the sampled closure escalation is unaffected.
    pub fn with_threads<G: GraphView>(g: &G, threads: usize) -> Self {
        RelationCatalog {
            num_nodes: g.num_nodes(),
            fingerprint: graph_fingerprint(g),
            index: FxHashMap::default(),
            relations: Vec::new(),
            footprints: Vec::new(),
            free_slots: Vec::new(),
            fingerprint_stale: false,
            scratch: ReachScratch::new(),
            threads: rpq::effective_threads(threads),
            mode: MaterialiseMode::Auto,
            hits: 0,
            misses: 0,
            evictions: 0,
            materialise_ms: 0.0,
            peak_scratch_bytes: 0,
        }
    }

    /// A catalog that materialises exactly like the pre-planner (PR 1)
    /// engine: per-source BFS, unconditionally dense rows, sequential.
    /// Only meant for `BENCH_eval`'s catalog-vs-per-variant comparison —
    /// see [`eval_tuples_join_unshared`].
    pub fn pr1_baseline<G: GraphView>(g: &G) -> Self {
        RelationCatalog {
            mode: MaterialiseMode::Pr1Baseline,
            ..Self::new(g)
        }
    }

    /// The id of the relation for `nfa` on `g`, materialising it on first
    /// sight. Panics if `g` is not the graph the catalog was built for:
    /// node count is checked in O(1) on every lookup, and debug builds
    /// additionally verify a sampled structural fingerprint (edge count
    /// plus a sample of edges), so a swapped graph with the same node
    /// count is caught in tests without taxing the all-hits fast path
    /// (`GraphDb` is structurally immutable once built).
    pub fn get_or_materialize<G: GraphView>(&mut self, g: &G, nfa: &Nfa) -> usize {
        assert_eq!(
            self.num_nodes,
            g.num_nodes(),
            "RelationCatalog is bound to a different graph"
        );
        if self.fingerprint_stale {
            // A mutation was reported since the last sample; surviving
            // entries are valid by the footprint invariant, so only the
            // misuse guard needs re-anchoring.
            self.fingerprint = graph_fingerprint(g);
            self.fingerprint_stale = false;
        }
        debug_assert_eq!(
            self.fingerprint,
            graph_fingerprint(g),
            "RelationCatalog is bound to a different graph"
        );
        let key = nfa.canonical_key();
        if let Some(&id) = self.index.get(&key) {
            self.hits += 1;
            return id;
        }
        self.misses += 1;
        let t0 = Instant::now();
        let rel = match self.mode {
            MaterialiseMode::Pr1Baseline => {
                let rel = rpq::rpq_relation_pr1_dense(g, nfa, &mut self.scratch);
                self.peak_scratch_bytes = self.peak_scratch_bytes.max(self.scratch.heap_bytes());
                rel
            }
            MaterialiseMode::Auto => {
                let (rel, stats) =
                    rpq::rpq_relation_auto_with_stats(g, nfa, &mut self.scratch, self.threads);
                self.peak_scratch_bytes = self.peak_scratch_bytes.max(stats.scratch_bytes);
                rel
            }
        };
        // Retention policy: keep the scratch warm for the common case but
        // release what a one-off huge product forced beyond the budget
        // (worker scratches die with their threads; this is the pooled one).
        self.scratch.shrink_to(rpq::SCRATCH_RETAIN_STATES);
        self.materialise_ms += t0.elapsed().as_secs_f64() * 1e3;
        let footprint = nfa.symbols();
        let id = match self.free_slots.pop() {
            Some(slot) => {
                self.relations[slot] = rel;
                self.footprints[slot] = footprint;
                slot
            }
            None => {
                let id = self.relations.len();
                self.relations.push(rel);
                self.footprints.push(footprint);
                id
            }
        };
        self.index.insert(key, id);
        id
    }

    /// Evicts every entry whose label footprint mentions `label` — the
    /// invalidation hook for edge mutations: an atom relation depends only
    /// on edges labelled from its NFA alphabet, so after inserting or
    /// deleting `label`-edges, entries not mentioning `label` stay exact.
    /// Marks the misuse-guard fingerprint stale (re-sampled at the next
    /// lookup). Returns the number of entries evicted.
    pub fn invalidate_label(&mut self, label: Symbol) -> usize {
        self.fingerprint_stale = true;
        let footprints = &self.footprints;
        let evicted: Vec<usize> = {
            let mut gone = Vec::new();
            self.index.retain(|_, &mut slot| {
                if footprints[slot].contains(&label) {
                    gone.push(slot);
                    false
                } else {
                    true
                }
            });
            gone
        };
        for &slot in &evicted {
            // Release the relation's heap now (`Relation::empty` is O(1));
            // the slot id is recycled by the next materialisation.
            self.relations[slot] = Relation::empty(self.num_nodes);
            self.footprints[slot].clear();
            self.free_slots.push(slot);
        }
        self.evictions += evicted.len();
        evicted.len()
    }

    /// Replays a crash-recovery report against the catalog: evicts every
    /// entry whose footprint mentions a label the recovered WAL mutated
    /// (the same invalidations the pre-crash process had applied
    /// incrementally), and rebinds outright when the node universe is not
    /// the one this catalog was sized for. A process that reopens a
    /// durable graph and carries a warm catalog (e.g. deserialized, or a
    /// server restarting onto the same snapshot) must call this before
    /// serving queries — `tests/durability.rs` asserts the recovered
    /// catalog then answers exactly like a cold one. Returns the number
    /// of entries evicted.
    pub fn rehydrate_after_recovery<G: GraphView>(
        &mut self,
        g: &G,
        report: &crpq_graph::wal::RecoveryReport,
    ) -> usize {
        if self.num_nodes != g.num_nodes() {
            let evicted = self.cached_entries();
            self.rebind(g);
            return evicted;
        }
        // The fingerprint was sampled against the pre-crash state; force a
        // re-sample even when no label-footprint entry is evicted.
        self.fingerprint_stale = true;
        report
            .mutated_labels
            .iter()
            .map(|&l| self.invalidate_label(l))
            .sum()
    }

    /// Evicts **every** entry — the structure-oblivious baseline the
    /// `--mutate-smoke` benchmark compares footprint-keyed eviction
    /// against. Returns the number of entries evicted.
    pub fn invalidate_all(&mut self) -> usize {
        self.fingerprint_stale = true;
        let evicted = self.index.len();
        self.index.clear();
        for slot in 0..self.relations.len() {
            if !self.footprints[slot].is_empty() || !self.relations[slot].is_empty() {
                self.relations[slot] = Relation::empty(self.num_nodes);
            }
            self.footprints[slot].clear();
        }
        self.free_slots = (0..self.relations.len()).collect();
        self.evictions += evicted;
        evicted
    }

    /// Rebinds the catalog after a change to the **node universe** (e.g.
    /// [`crpq_graph::DeltaGraph::add_node`] or compaction): relations and
    /// domains are sized by `num_nodes`, so nothing cached survives.
    pub fn rebind<G: GraphView>(&mut self, g: &G) {
        self.evictions += self.index.len();
        self.index.clear();
        self.relations.clear();
        self.footprints.clear();
        self.free_slots.clear();
        self.num_nodes = g.num_nodes();
        self.fingerprint = graph_fingerprint(g);
        self.fingerprint_stale = false;
    }

    /// Entries evicted so far by the invalidation entry points.
    pub fn evictions(&self) -> usize {
        self.evictions
    }

    /// Number of currently cached (non-evicted) entries.
    pub fn cached_entries(&self) -> usize {
        self.index.len()
    }

    /// The materialised relation with the given id.
    pub fn relation(&self, id: usize) -> &Relation {
        &self.relations[id]
    }

    /// Number of distinct relations materialised so far.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Whether nothing has been materialised yet.
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Lookups that reused an existing relation.
    pub fn hits(&self) -> usize {
        self.hits
    }

    /// Lookups that had to materialise (= number of materialisations).
    pub fn misses(&self) -> usize {
        self.misses
    }

    /// `hits / (hits + misses)`, or 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Total wall clock spent materialising relations, in milliseconds.
    pub fn materialise_ms(&self) -> f64 {
        self.materialise_ms
    }

    /// Approximate heap bytes of every relation materialised so far — the
    /// peak-RSS proxy `BENCH_eval` records alongside wall clock.
    pub fn relation_bytes(&self) -> usize {
        self.relations.iter().map(Relation::heap_bytes).sum()
    }

    /// Largest per-materialisation sweep-scratch footprint (stamp arrays
    /// across workers) seen by this catalog — recorded in the benchmark
    /// baselines so scratch regressions are visible across PRs.
    pub fn peak_scratch_bytes(&self) -> usize {
        self.peak_scratch_bytes
    }
}

/// Sampled structural fingerprint of a graph: node count, edge count and
/// up to 64 stride-sampled edges. Cheap enough to recompute on every
/// catalog lookup, strong enough to catch the realistic misuse modes
/// (different graph with the same node count, mutated graph).
fn graph_fingerprint<G: GraphView>(g: &G) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = crpq_util::FxHasher::default();
    g.num_nodes().hash(&mut h);
    g.num_edges().hash(&mut h);
    let n = g.num_nodes();
    let stride = (n / 64).max(1);
    let mut v = 0;
    while v < n {
        let node = NodeId(v as u32);
        for (sym, to) in g.out_edges_iter(node) {
            (v as u32, sym.0, to.0).hash(&mut h);
        }
        v += stride;
    }
    h.finish()
}

/// Planner output for one ε-free variant: compiled atoms plus the catalog
/// ids of their relations. Turned into an executable [`JoinPlan`] once all
/// variants are planned (so the catalog can be borrowed immutably).
pub(crate) struct VariantPlan {
    atoms: Vec<CompiledAtom>,
    rel_ids: Vec<usize>,
}

/// Compiles a variant's atoms and resolves each against the catalog,
/// materialising only relations never seen before.
pub(crate) fn plan_variant<G: GraphView>(
    variant: &Crpq,
    g: &G,
    analyze: bool,
    catalog: &mut RelationCatalog,
) -> VariantPlan {
    let atoms = compile_atoms(variant, analyze);
    let rel_ids = atoms
        .iter()
        .map(|a| catalog.get_or_materialize(g, &a.nfa))
        .collect();
    VariantPlan { atoms, rel_ids }
}

// ---------------------------------------------------------------------------
// Join-based engine (executor)
// ---------------------------------------------------------------------------

/// The compiled join pipeline for one ε-free variant: catalog-borrowed
/// per-atom relations plus semi-join-pruned per-variable domains.
/// Immutable once built, so [`crate::parallel`] can share one plan across
/// worker threads.
pub(crate) struct JoinPlan<'a, G: GraphView> {
    g: &'a G,
    pub(crate) q: &'a Crpq,
    pub(crate) sem: Semantics,
    pub(crate) atoms: Vec<CompiledAtom>,
    /// `relations[i]` = full standard-semantics relation of atom `i`,
    /// borrowed from the [`RelationCatalog`] it was planned against.
    pub(crate) relations: Vec<&'a Relation>,
    /// Per-variable candidate domains after semi-join fixpoint —
    /// density-adaptive ([`NodeSet`]: sorted-`u32` sparse / bitset dense),
    /// so domain storage and the per-backtracking-step clone+intersect are
    /// `O(candidates)` instead of `O(|V|)` per variable.
    pub(crate) domains: Vec<NodeSet>,
    /// Some domain is empty — the variant contributes nothing.
    empty: bool,
}

impl<'a, G: GraphView> JoinPlan<'a, G> {
    /// Resolves a [`VariantPlan`] against the (now frozen) catalog and
    /// prunes variable domains to the semi-join fixpoint.
    pub(crate) fn build(
        variant: &'a Crpq,
        g: &'a G,
        sem: Semantics,
        plan: VariantPlan,
        catalog: &'a RelationCatalog,
    ) -> Self {
        let VariantPlan { atoms, rel_ids } = plan;
        let relations: Vec<&Relation> = rel_ids.iter().map(|&id| catalog.relation(id)).collect();

        let n = g.num_nodes();
        let mut domains = vec![NodeSet::full(n); variant.num_vars];

        // Initial restriction: sources/targets per incident atom; self-loop
        // atoms keep only nodes related to themselves. Each intersection
        // re-picks the domain's representation, so label-selective atoms
        // collapse their variables to small sorted id lists immediately.
        for (atom, rel) in atoms.iter().zip(&relations) {
            if atom.src == atom.dst {
                let diag: Vec<u32> = rel
                    .source_set()
                    .iter()
                    .filter(|&v| rel.contains(NodeId(v as u32), NodeId(v as u32)))
                    .map(|v| v as u32)
                    .collect();
                domains[atom.src.index()].intersect_with_sorted(&diag);
            } else {
                domains[atom.src.index()].intersect_with_set(rel.source_set());
                domains[atom.dst.index()].intersect_with_set(rel.target_set());
            }
        }

        // Semi-join fixpoint: a node stays in dom(src) only while some
        // partner in dom(dst) is still related (and vice versa). Each pass
        // rebuilds the shrinking side from its survivors — `O(candidates)`
        // work and memory, not `O(|V|)`.
        let mut changed = true;
        while changed {
            changed = false;
            for (atom, rel) in atoms.iter().zip(&relations) {
                if atom.src == atom.dst {
                    continue;
                }
                let (s, d) = (atom.src.index(), atom.dst.index());
                let kept: Vec<u32> = domains[s]
                    .iter()
                    .filter(|&u| domains[d].intersects_row(&rel.forward(NodeId(u as u32))))
                    .map(|u| u as u32)
                    .collect();
                if kept.len() != domains[s].len() {
                    domains[s] = NodeSet::from_sorted_ids(kept, n);
                    changed = true;
                }
                let kept: Vec<u32> = domains[d]
                    .iter()
                    .filter(|&v| domains[s].intersects_row(&rel.backward(NodeId(v as u32))))
                    .map(|v| v as u32)
                    .collect();
                if kept.len() != domains[d].len() {
                    domains[d] = NodeSet::from_sorted_ids(kept, n);
                    changed = true;
                }
            }
        }

        let empty = domains.iter().any(crpq_graph::rpq::NodeSet::is_empty) && variant.num_vars > 0;
        JoinPlan {
            g,
            q: variant,
            sem,
            atoms,
            relations,
            domains,
            empty,
        }
    }

    /// Whether the pruned plan can produce no results at all.
    pub(crate) fn is_empty(&self) -> bool {
        self.empty
    }

    /// Node count of the plan's graph (for sizing scratch pools from the
    /// sibling executor modules, which cannot see the private graph ref).
    pub(crate) fn num_nodes(&self) -> usize {
        self.g.num_nodes()
    }

    /// Whether the variant's **atom–variable incidence graph is cyclic**:
    /// some connected component of the variable graph (one edge per
    /// non-self-loop atom, parallel atoms counted separately) contains a
    /// cycle. Detected by union-find — an atom whose endpoints are already
    /// connected closes a cycle, which covers both genuine cycles
    /// (triangle, 4-cycle) and parallel atoms between the same variable
    /// pair. Self-loop atoms are folded into the domains at build time and
    /// close no cycle. This is the [`JoinMode::Auto`] dispatch predicate:
    /// cyclic shapes run the worst-case-optimal executor ([`crate::wcoj`]).
    pub(crate) fn is_cyclic(&self) -> bool {
        let mut uf = crpq_util::UnionFind::new(self.q.num_vars);
        self.atoms
            .iter()
            .filter(|a| a.src != a.dst)
            .any(|a| !uf.union(a.src.index(), a.dst.index()))
    }

    /// Executor dispatch for this variant under `mode` (see module docs).
    pub(crate) fn use_wcoj(&self, mode: JoinMode) -> bool {
        match mode {
            JoinMode::Auto => self.is_cyclic(),
            JoinMode::Binary => false,
            JoinMode::Wcoj => true,
        }
    }

    /// Runs the join to completion (or until the sink stops it), inserting
    /// every result projection (tuple of free-variable images) into `out`.
    /// `scratch` pools the verification buffers across solutions (and
    /// across variants when the caller reuses it); the per-plan atom memo
    /// is reset here.
    pub(crate) fn search_all(
        &self,
        scratch: &mut VerifyScratch,
        out: &mut dyn TupleSink,
    ) -> SinkStatus {
        if self.empty {
            return SinkStatus::Continue;
        }
        scratch.begin_plan(self.g.num_nodes());
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars];
        self.search(&mut assignment, scratch, out)
    }

    /// The relation rows of `var`'s assigned neighbours — the selective
    /// constraints a partial assignment imposes on `var`'s candidates.
    fn neighbour_rows(&self, var: Var, assignment: &[Option<NodeId>]) -> Vec<RelationRow<'_>> {
        let mut rows = Vec::new();
        for (atom, rel) in self.atoms.iter().zip(&self.relations) {
            if atom.src == atom.dst {
                continue; // folded into the domain at build time
            }
            if atom.src == var {
                if let Some(dst_node) = assignment[atom.dst.index()] {
                    rows.push(rel.backward(dst_node));
                }
            }
            if atom.dst == var {
                if let Some(src_node) = assignment[atom.src.index()] {
                    rows.push(rel.forward(src_node));
                }
            }
        }
        rows
    }

    /// The candidate set for `var` given the current partial assignment:
    /// pruned domain ∩ relation rows of assigned neighbours (∖ used nodes
    /// under `q-inj`). When any neighbour is assigned, the intersection is
    /// **driven from the smallest neighbour row** — membership tests
    /// against the domain and the other rows — so the per-backtracking
    /// -step cost is `O(row)`, never `O(|V|)`: cloning a dense 10⁷-node
    /// domain at every step is exactly the quadratic wall the 10⁷ scale
    /// row exists to catch. Only an unconstrained variable (no neighbour
    /// assigned — in practice the root of the search) pays for a domain
    /// clone.
    fn candidates(&self, var: Var, assignment: &[Option<NodeId>]) -> NodeSet {
        let domain = &self.domains[var.index()];
        let rows = self.neighbour_rows(var, assignment);
        let mut cands = match rows
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| r.len())
            .map(|(i, _)| i)
        {
            Some(driver) => {
                let kept: Vec<u32> = rows[driver]
                    .iter()
                    .filter(|&u| {
                        domain.contains(u)
                            && rows
                                .iter()
                                .enumerate()
                                .all(|(i, r)| i == driver || r.contains(u))
                    })
                    .map(|u| u as u32)
                    .collect();
                NodeSet::from_sorted_ids(kept, domain.universe())
            }
            None => domain.clone(),
        };
        if self.sem == Semantics::QueryInjective {
            for node in assignment.iter().flatten() {
                cands.remove(node.index());
            }
        }
        cands
    }

    /// Writes the free-variable projection into `buf`; `false` (buffer
    /// contents unspecified) when some free variable is still unassigned.
    pub(crate) fn projection_into(
        &self,
        assignment: &[Option<NodeId>],
        buf: &mut Vec<NodeId>,
    ) -> bool {
        buf.clear();
        for v in &self.q.free {
            match assignment[v.index()] {
                Some(n) => buf.push(n),
                None => return false,
            }
        }
        true
    }

    /// The branch the sequential search takes from `assignment`: the
    /// unassigned variable with the fewest candidates plus its candidate
    /// set, or `None` when the assignment is complete. Shared by the
    /// recursive [`Self::search`] and the work-stealing driver in
    /// [`crate::parallel`], so a stolen subtree branches exactly like the
    /// sequential executor would. (An empty candidate set is returned
    /// as-is — the caller's zero-iteration loop prunes the subtree.)
    pub(crate) fn choose_branch(&self, assignment: &[Option<NodeId>]) -> Option<(Var, NodeSet)> {
        // Exact candidate counts are cheap for every unbound variable:
        // row-constrained variables materialise their (small, row-driven)
        // candidate set, unconstrained ones are counted straight off the
        // pruned domain — materialising those would clone a possibly
        // dense O(|V|) set per backtracking step. Only the winning
        // unconstrained variable (at most once per search, at the root)
        // is materialised at the end.
        let mut best: Option<(Var, Option<NodeSet>, usize)> = None;
        for v in 0..assignment.len() {
            if assignment[v].is_some() {
                continue;
            }
            let var = Var(v as u32);
            let (cands, size) = if self.neighbour_rows(var, assignment).is_empty() {
                let domain = &self.domains[v];
                let mut size = domain.len();
                if self.sem == Semantics::QueryInjective {
                    size -= assignment
                        .iter()
                        .flatten()
                        .filter(|node| domain.contains(node.index()))
                        .count();
                }
                (None, size)
            } else {
                let cands = self.candidates(var, assignment);
                let size = cands.len();
                (Some(cands), size)
            };
            if size == 0 {
                let cands = cands.unwrap_or_else(|| NodeSet::empty(self.domains[v].universe()));
                return Some((var, cands));
            }
            if best.as_ref().is_none_or(|&(_, _, s)| size < s) {
                best = Some((var, cands, size));
                if size == 1 {
                    break;
                }
            }
        }
        best.map(|(var, cands, _)| {
            let cands = cands.unwrap_or_else(|| self.candidates(var, assignment));
            (var, cands)
        })
    }

    /// Runs the backtracking join from an arbitrary partial `assignment`
    /// — the subtree hand-off point of the work-stealing driver
    /// ([`crate::parallel`]): a worker that has explicitly enumerated the
    /// stealable prefix levels delegates the remaining subtree here.
    pub(crate) fn search_from(
        &self,
        assignment: &mut Vec<Option<NodeId>>,
        scratch: &mut VerifyScratch,
        out: &mut dyn TupleSink,
    ) -> SinkStatus {
        self.search(assignment, scratch, out)
    }

    /// Selectivity-ordered backtracking join.
    fn search(
        &self,
        assignment: &mut Vec<Option<NodeId>>,
        scratch: &mut VerifyScratch,
        out: &mut dyn TupleSink,
    ) -> SinkStatus {
        // Early exit: a stopped sink (limit reached, stream hung up,
        // sibling worker cancelled) unwinds the whole search.
        if out.should_stop() {
            return SinkStatus::Stop;
        }
        // Prune: once all free variables are fixed, deeper levels only vary
        // existential variables — pointless if the projection is already a
        // known result. The projection goes through a pooled buffer; the
        // hash set answers slice lookups without an owned tuple.
        let mut proj = std::mem::take(&mut scratch.tuple);
        let pruned =
            self.projection_into(assignment, &mut proj) && out.contains_tuple(proj.as_slice());
        scratch.tuple = proj;
        if pruned {
            return SinkStatus::Continue;
        }
        let Some((var, cands)) = self.choose_branch(assignment) else {
            // Complete assignment: relations guaranteed it standard-wise;
            // verify the injective side and record the projection. `mu`
            // lives in the scratch pool; an owned tuple is only allocated
            // for solutions that actually verify.
            let mut mu = std::mem::take(&mut scratch.mu);
            mu.clear();
            mu.extend(assignment.iter().map(|a| a.unwrap())); // invariant: every variable is bound at a leaf
            let ok = self.verify(&mu, scratch);
            scratch.mu = mu;
            if ok {
                // `scratch.tuple` still holds this call's projection: the
                // entry prune filled it (the assignment is complete here,
                // so `projection_into` returned `true`) and `verify`
                // does not touch it.
                debug_assert_eq!(
                    scratch.tuple.len(),
                    self.q.free.len(),
                    "entry prune must have projected the complete assignment"
                );
                return out.insert_tuple(scratch.tuple.clone());
            }
            return SinkStatus::Continue;
        };
        for node in cands.iter() {
            let node = NodeId(node as u32);
            if !self.bind_allowed(var, node, assignment, scratch) {
                continue;
            }
            assignment[var.index()] = Some(node);
            let status = self.search(assignment, scratch, out);
            assignment[var.index()] = None;
            if status == SinkStatus::Stop {
                return SinkStatus::Stop;
            }
        }
        SinkStatus::Continue
    }

    /// Bind-time injectivity prune (see the module docs): whether binding
    /// `node` to `var` can still lead to a verifying completion, judged by
    /// the per-atom feasibility of every incident atom both of whose
    /// endpoints are now bound. Exact per atom under `a-inj`; a sound
    /// necessary condition under `q-inj` (the joint placement only blocks
    /// *more* nodes). Standard semantics never prunes — the relations are
    /// exact there.
    pub(crate) fn bind_allowed(
        &self,
        var: Var,
        node: NodeId,
        assignment: &[Option<NodeId>],
        scratch: &mut VerifyScratch,
    ) -> bool {
        if self.sem == Semantics::Standard {
            return true;
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            let (s, d) = if atom.src == atom.dst {
                if atom.src != var {
                    continue;
                }
                (node, node)
            } else if atom.src == var {
                match assignment[atom.dst.index()] {
                    Some(d) => (node, d),
                    None => continue,
                }
            } else if atom.dst == var {
                match assignment[atom.src.index()] {
                    Some(s) => (s, node),
                    None => continue,
                }
            } else {
                continue;
            };
            if !self.atom_feasible_ainj(i, s, d, scratch) {
                return false;
            }
        }
        true
    }

    /// Per-atom atom-injective feasibility of `(s, d)` for atom `i` —
    /// the branch structure mirrors [`verify_atom_injective`] exactly
    /// (semantics-critical), with the standard-reachability answer of the
    /// deletion-closed fast path constant-`true`: callers only ask about
    /// pairs already relation-consistent (candidate generation intersects
    /// every incident row; the domain fold guarantees self-loop pairs).
    /// Simple-path/-cycle answers are memoised per plan in `scratch`.
    fn atom_feasible_ainj(
        &self,
        i: usize,
        s: NodeId,
        d: NodeId,
        scratch: &mut VerifyScratch,
    ) -> bool {
        let atom = &self.atoms[i];
        if atom.src != atom.dst {
            if s == d {
                // Simple path from a node to itself is the empty path;
                // atoms are ε-free, so this is unsatisfiable.
                return atom.accepts_epsilon;
            }
            if atom.deletion_closed {
                // Loop-pruning lemma: standard reachability is exact, and
                // it is already enforced by the relations.
                return true;
            }
        }
        let key = (i as u32, s.0, d.0);
        if let Some(&ok) = scratch.atom_memo.get(&key) {
            return ok;
        }
        scratch.ensure_graph(self.g.num_nodes());
        let ok = if atom.src == atom.dst {
            rpq::simple_cycle_exists(self.g, &atom.nfa, s, &scratch.empty)
        } else {
            rpq::simple_path_exists(self.g, &atom.nfa, s, d, &scratch.empty)
        };
        scratch.atom_memo.insert(key, ok);
        ok
    }

    /// Verifies a complete, relation-consistent assignment under the plan's
    /// semantics. For `st` the relations are exact, so there is nothing
    /// left to check; the injective semantics re-check paths. Shared by
    /// both executors (backtracking and [`crate::wcoj`]).
    pub(crate) fn verify(&self, mu: &[NodeId], scratch: &mut VerifyScratch) -> bool {
        debug_assert!(self
            .atoms
            .iter()
            .zip(&self.relations)
            .all(|(atom, rel)| { rel.contains(mu[atom.src.index()], mu[atom.dst.index()]) }));
        match self.sem {
            Semantics::Standard => true,
            // Per-atom checks routed through the bind-time memo
            // ([`Self::atom_feasible_ainj`], same branch structure as
            // [`verify_atom_injective`] with constant-true `std_reach`):
            // with inline pruning active, every atom was already checked
            // when its second endpoint was bound, so this is a handful of
            // hash lookups.
            Semantics::AtomInjective => (0..self.atoms.len()).all(|i| {
                let (s, d) = (mu[self.atoms[i].src.index()], mu[self.atoms[i].dst.index()]);
                self.atom_feasible_ainj(i, s, d, scratch)
            }),
            Semantics::QueryInjective => verify_query_injective(self.g, &self.atoms, mu, scratch),
        }
    }

    /// For parallel evaluation: the variable the sequential search would
    /// assign first and its candidates, or `None` when the variant has no
    /// variables (pure Boolean check).
    pub(crate) fn split_candidates(&self) -> Option<(Var, Vec<NodeId>)> {
        let var = (0..self.q.num_vars)
            .min_by_key(|&v| self.domains[v].len())
            .map(|v| Var(v as u32))?;
        let cands = self.domains[var.index()]
            .iter()
            .map(|n| NodeId(n as u32))
            .collect();
        Some((var, cands))
    }

    /// For parallel evaluation: runs the join with `var` pre-assigned to
    /// `node`, collecting projections into `out`. Each worker thread owns
    /// its own `scratch`.
    pub(crate) fn search_with_fixed(
        &self,
        var: Var,
        node: NodeId,
        scratch: &mut VerifyScratch,
        out: &mut dyn TupleSink,
    ) -> SinkStatus {
        if self.empty {
            return SinkStatus::Continue;
        }
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars];
        if !self.bind_allowed(var, node, &assignment, scratch) {
            return SinkStatus::Continue;
        }
        assignment[var.index()] = Some(node);
        self.search(&mut assignment, scratch, out)
    }
}

// ---------------------------------------------------------------------------
// Membership engine (per-tuple backtracking)
// ---------------------------------------------------------------------------

/// Evaluation of a single ε-free variant.
pub(crate) struct VariantEval<'a, G: GraphView> {
    g: &'a G,
    q: &'a Crpq,
    atoms: Vec<CompiledAtom>,
    sem: Semantics,
    reach_fwd: FxHashMap<(usize, NodeId), BitSet>,
    reach_back: FxHashMap<(usize, NodeId), BitSet>,
    scratch: VerifyScratch,
}

impl<'a, G: GraphView> VariantEval<'a, G> {
    pub(crate) fn new(variant: &'a Crpq, g: &'a G, sem: Semantics) -> Self {
        Self::build(variant, g, sem, false)
    }

    /// Like [`VariantEval::new`], but classifies every atom language and
    /// marks factor-deletion-closed atoms for the reachability fast path.
    pub(crate) fn new_analyzed(variant: &'a Crpq, g: &'a G, sem: Semantics) -> Self {
        Self::build(variant, g, sem, true)
    }

    fn build(variant: &'a Crpq, g: &'a G, sem: Semantics, analyze: bool) -> Self {
        VariantEval {
            g,
            q: variant,
            atoms: compile_atoms(variant, analyze),
            sem,
            reach_fwd: FxHashMap::default(),
            reach_back: FxHashMap::default(),
            scratch: VerifyScratch::new(),
        }
    }

    fn contains(&mut self, tuple: &[NodeId]) -> bool {
        // Pin free variables; repeated free vars must agree.
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars];
        for (&v, &n) in self.q.free.iter().zip(tuple) {
            match assignment[v.index()] {
                Some(prev) if prev != n => return false,
                _ => assignment[v.index()] = Some(n),
            }
        }
        if self.sem == Semantics::QueryInjective {
            // μ injective: distinct pinned vars need distinct nodes.
            for i in 0..assignment.len() {
                for j in i + 1..assignment.len() {
                    if let (Some(a), Some(b)) = (assignment[i], assignment[j]) {
                        if a == b {
                            return false;
                        }
                    }
                }
            }
        }
        let mut found = false;
        let _ = self.search(&mut assignment, &mut |this, full| {
            if this.verify(full) {
                found = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        found
    }

    /// Like `contains`, but returns the witnessing assignment and one node
    /// path per atom instead of a bare boolean.
    pub(crate) fn contains_witness(
        &mut self,
        tuple: &[NodeId],
    ) -> Option<(Vec<NodeId>, Vec<Vec<NodeId>>)> {
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars];
        for (&v, &n) in self.q.free.iter().zip(tuple) {
            match assignment[v.index()] {
                Some(prev) if prev != n => return None,
                _ => assignment[v.index()] = Some(n),
            }
        }
        if self.sem == Semantics::QueryInjective {
            for i in 0..assignment.len() {
                for j in i + 1..assignment.len() {
                    if let (Some(a), Some(b)) = (assignment[i], assignment[j]) {
                        if a == b {
                            return None;
                        }
                    }
                }
            }
        }
        let mut witness = None;
        let _ = self.search(&mut assignment, &mut |this, full| {
            if let Some(paths) = this.verify_paths(full) {
                witness = Some((full.to_vec(), paths));
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        witness
    }

    /// Backtracks over variable assignments, invoking `visit` on complete
    /// assignments that pass the reachability pruning.
    fn search(
        &mut self,
        assignment: &mut Vec<Option<NodeId>>,
        visit: &mut dyn FnMut(&mut Self, &[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        // Choose the unassigned var with the fewest candidates.
        let mut best: Option<(Var, Vec<NodeId>)> = None;
        for v in 0..assignment.len() {
            if assignment[v].is_some() {
                continue;
            }
            let cands = self.candidates(Var(v as u32), assignment);
            if cands.is_empty() {
                return ControlFlow::Continue(());
            }
            let better = best.as_ref().is_none_or(|(_, c)| cands.len() < c.len());
            if better {
                let single = cands.len() == 1;
                best = Some((Var(v as u32), cands));
                if single {
                    break;
                }
            }
        }
        let Some((var, cands)) = best else {
            let full: Vec<NodeId> = assignment.iter().map(|a| a.unwrap()).collect(); // invariant: every variable is bound at a leaf
            return visit(self, &full);
        };
        for node in cands {
            assignment[var.index()] = Some(node);
            self.search(assignment, visit)?;
            assignment[var.index()] = None;
        }
        ControlFlow::Continue(())
    }

    fn reach_fwd(&mut self, atom: usize, from: NodeId) -> &BitSet {
        if !self.reach_fwd.contains_key(&(atom, from)) {
            let set = rpq::rpq_reach(self.g, &self.atoms[atom].nfa, from);
            self.reach_fwd.insert((atom, from), set);
        }
        &self.reach_fwd[&(atom, from)]
    }

    fn reach_back(&mut self, atom: usize, to: NodeId) -> &BitSet {
        if !self.reach_back.contains_key(&(atom, to)) {
            let set = rpq::rpq_reach_back(self.g, &self.atoms[atom].nfa_rev, to);
            self.reach_back.insert((atom, to), set);
        }
        &self.reach_back[&(atom, to)]
    }

    fn candidates(&mut self, var: Var, assignment: &[Option<NodeId>]) -> Vec<NodeId> {
        let mut domain: Option<BitSet> = None;
        let restrict = |domain: &mut Option<BitSet>, set: &BitSet| match domain {
            None => *domain = Some(set.clone()),
            Some(d) => d.intersect_with(set),
        };

        for i in 0..self.atoms.len() {
            let (src, dst) = (self.atoms[i].src, self.atoms[i].dst);
            if src == var && dst == var {
                continue; // self-loop atoms handled per candidate below
            }
            if src == var {
                if let Some(dst_node) = assignment[dst.index()] {
                    let set = self.reach_back(i, dst_node).clone();
                    restrict(&mut domain, &set);
                }
            }
            if dst == var {
                if let Some(src_node) = assignment[src.index()] {
                    let set = self.reach_fwd(i, src_node).clone();
                    restrict(&mut domain, &set);
                }
            }
        }

        let mut cands: Vec<NodeId> = match domain {
            Some(d) => d.iter().map(|i| NodeId(i as u32)).collect(),
            None => (0..self.g.num_nodes()).map(|v| NodeId(v as u32)).collect(),
        };

        // Self-loop atoms: reachability from the node back to itself.
        let loop_atoms: Vec<usize> = (0..self.atoms.len())
            .filter(|&i| self.atoms[i].src == var && self.atoms[i].dst == var)
            .collect();
        for i in loop_atoms {
            cands.retain(|&n| {
                // borrow dance: compute membership through the cache
                let set = rpq::rpq_reach(self.g, &self.atoms[i].nfa, n);
                set.contains(n.index())
            });
        }

        // Injectivity of μ under q-inj.
        if self.sem == Semantics::QueryInjective {
            cands.retain(|n| !assignment.iter().flatten().any(|used| used == n));
        }
        cands
    }

    /// Verifies a complete assignment according to the semantics.
    fn verify(&mut self, mu: &[NodeId]) -> bool {
        match self.sem {
            Semantics::Standard => {
                // Pruning used exact reachability for non-loop atoms; loop
                // atoms were checked at candidate time. Re-check everything
                // defensively (cheap thanks to the cache).
                (0..self.atoms.len()).all(|i| {
                    let (s, d) = (mu[self.atoms[i].src.index()], mu[self.atoms[i].dst.index()]);
                    self.reach_fwd(i, s).contains(d.index())
                })
            }
            Semantics::AtomInjective => {
                // Split borrows so the deletion-closed fast path can go
                // through the mutable reachability cache while the shared
                // verifier reads the atoms and the scratch supplies the
                // pooled empty blocked set.
                let VariantEval {
                    g,
                    atoms,
                    reach_fwd,
                    scratch,
                    ..
                } = self;
                let g: &G = g;
                let atoms: &[CompiledAtom] = atoms.as_slice();
                scratch.prepare(g.num_nodes(), 0);
                let mut std_reach = |i: usize, s: NodeId, d: NodeId| {
                    reach_fwd
                        .entry((i, s))
                        .or_insert_with(|| rpq::rpq_reach(g, &atoms[i].nfa, s))
                        .contains(d.index())
                };
                verify_atom_injective(g, atoms, mu, &mut std_reach, &scratch.empty)
            }
            Semantics::QueryInjective => {
                verify_query_injective(self.g, &self.atoms, mu, &mut self.scratch)
            }
        }
    }

    /// Like `verify`, but returns one witnessing node path per atom.
    fn verify_paths(&mut self, mu: &[NodeId]) -> Option<Vec<Vec<NodeId>>> {
        match self.sem {
            Semantics::Standard => (0..self.atoms.len())
                .map(|i| {
                    let atom = &self.atoms[i];
                    let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
                    rpq::shortest_path(self.g, &atom.nfa, s, d)
                })
                .collect(),
            Semantics::AtomInjective => (0..self.atoms.len())
                .map(|i| {
                    let atom = &self.atoms[i];
                    let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
                    let mut cap: Option<Vec<NodeId>> = None;
                    if atom.src == atom.dst {
                        rpq::for_each_simple_cycle(self.g, &atom.nfa, s, &self.g.node_set(), |p| {
                            cap = Some(p.to_vec());
                            ControlFlow::Break(())
                        });
                    } else if s == d {
                        // Only the empty path is simple from a node to
                        // itself; atoms are ε-free, so this fails.
                        if atom.accepts_epsilon {
                            cap = Some(vec![s]);
                        }
                    } else {
                        rpq::for_each_simple_path(
                            self.g,
                            &atom.nfa,
                            s,
                            d,
                            &self.g.node_set(),
                            |p| {
                                cap = Some(p.to_vec());
                                ControlFlow::Break(())
                            },
                        );
                    }
                    cap
                })
                .collect(),
            Semantics::QueryInjective => {
                self.scratch.prepare(self.g.num_nodes(), self.atoms.len());
                for &n in mu {
                    self.scratch.used.insert(n.index());
                }
                let mut paths = Vec::with_capacity(self.atoms.len());
                place_atoms(self.g, &self.atoms, mu, 0, &mut self.scratch, &mut paths)
                    .then_some(paths)
            }
        }
    }
}

/// Reusable buffers for the injective verification path.
///
/// `simple_path_exists`/`place_atoms` verification used to allocate a
/// fresh `|V|`-bit blocked set per placement level plus a `Vec` of
/// internal nodes per candidate path — per *join solution*. The scratch
/// pools those allocations: the blocked accumulator and the per-depth
/// snapshot/internal buffers live here and are reused across solutions,
/// across variants, and (for long-lived callers) across evaluations.
pub(crate) struct VerifyScratch {
    /// Blocked-node accumulator for the q-inj joint placement.
    used: BitSet,
    /// Per-depth snapshots of `used` (the enumerator's blocked set).
    blocked: Vec<BitSet>,
    /// Per-depth internal-node buffers.
    internals: Vec<Vec<NodeId>>,
    /// Pooled path buffer for boolean (non-witness) verification.
    paths: Vec<Vec<NodeId>>,
    /// Always-empty set with graph capacity — the "nothing blocked"
    /// argument of the a-inj per-atom checks. Never mutated after sizing.
    empty: BitSet,
    /// Pooled projection buffer for the duplicate-result prune (shared
    /// with the [`crate::wcoj`] executor).
    pub(crate) tuple: Vec<NodeId>,
    /// Pooled complete-assignment buffer handed to verification (shared
    /// with the [`crate::wcoj`] executor).
    pub(crate) mu: Vec<NodeId>,
    /// Bind-time memo of per-atom a-inj feasibility: `(atom index, src
    /// node, dst node) → simple-path/-cycle existence`. Keyed by atom
    /// *index*, so entries are only valid for one [`JoinPlan`] —
    /// [`Self::begin_plan`] clears it (parallel workers get a fresh
    /// scratch per plan instead).
    atom_memo: FxHashMap<(u32, u32, u32), bool>,
}

impl VerifyScratch {
    pub(crate) fn new() -> Self {
        VerifyScratch {
            used: BitSet::new(0),
            blocked: Vec::new(),
            internals: Vec::new(),
            paths: Vec::new(),
            empty: BitSet::new(0),
            tuple: Vec::new(),
            mu: Vec::new(),
            atom_memo: FxHashMap::default(),
        }
    }

    /// Sizes the graph-capacity bitsets without touching their contents
    /// beyond a (re)allocation — cheap equality check when already sized.
    fn ensure_graph(&mut self, n: usize) {
        if self.used.capacity() != n {
            self.used = BitSet::new(n);
            self.empty = BitSet::new(n);
        }
    }

    /// Plan boundary: sizes the pools for a graph with `n` nodes and
    /// invalidates the per-plan atom memo. Called by both executors'
    /// `search_all`; the subtree entry points (`search_from`,
    /// `search_with_fixed`, `search_from_level`) deliberately don't — the
    /// memo stays valid across subtrees of one plan.
    pub(crate) fn begin_plan(&mut self, n: usize) {
        self.ensure_graph(n);
        self.atom_memo.clear();
    }

    /// Sizes the pools for a graph with `n` nodes and a placement search
    /// `depth` atoms deep, and clears the blocked accumulator.
    fn prepare(&mut self, n: usize, depth: usize) {
        self.ensure_graph(n);
        self.used.clear();
        while self.blocked.len() < depth {
            self.blocked.push(BitSet::new(0));
        }
        while self.internals.len() < depth {
            self.internals.push(Vec::new());
        }
    }
}

impl Default for VerifyScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared atom-injective verification backing both engines: every atom
/// needs a simple path (simple cycle for `x -L-> x` atoms). `std_reach(i,
/// s, d)` supplies the standard-reachability answer that the
/// deletion-closed fast path relies on — a relation lookup in the join
/// engine (already enforced during the search), a cached BFS in the
/// membership engine. `empty` is a pooled always-empty blocked set sized
/// for `g` (see [`VerifyScratch`]). Branch order is semantics-critical;
/// keep the two callers on this one implementation.
fn verify_atom_injective<G: GraphView>(
    g: &G,
    atoms: &[CompiledAtom],
    mu: &[NodeId],
    std_reach: &mut dyn FnMut(usize, NodeId, NodeId) -> bool,
    empty: &BitSet,
) -> bool {
    debug_assert!(empty.is_empty() && empty.capacity() == g.num_nodes());
    atoms.iter().enumerate().all(|(i, atom)| {
        let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
        if atom.src == atom.dst {
            rpq::simple_cycle_exists(g, &atom.nfa, s, empty)
        } else if s == d {
            // Simple path from a node to itself is the empty path; atoms
            // are ε-free, so this is unsatisfiable.
            atom.accepts_epsilon
        } else if atom.deletion_closed {
            // Loop-pruning lemma: for deletion-closed languages a walk
            // witness prunes to a simple path still in the language, so
            // standard reachability is exact.
            std_reach(i, s, d)
        } else {
            rpq::simple_path_exists(g, &atom.nfa, s, d, empty)
        }
    })
}

/// Shared query-injective verification backing both engines: jointly place
/// internally disjoint simple paths for all atoms, with every μ-image
/// blocked as a path internal. All working sets come from `scratch`.
fn verify_query_injective<G: GraphView>(
    g: &G,
    atoms: &[CompiledAtom],
    mu: &[NodeId],
    scratch: &mut VerifyScratch,
) -> bool {
    scratch.prepare(g.num_nodes(), atoms.len());
    for &n in mu {
        scratch.used.insert(n.index());
    }
    let mut paths = std::mem::take(&mut scratch.paths);
    paths.clear();
    let ok = place_atoms(g, atoms, mu, 0, scratch, &mut paths);
    scratch.paths = paths;
    ok
}

/// Recursively places atom paths so that no internal node is reused
/// (query-injective joint search). On success, `paths` holds the chosen
/// node path for every atom from `i` onwards (earlier entries untouched).
/// Callers must have run `scratch.prepare(n, atoms.len())` and seeded
/// `scratch.used` with the μ-images.
fn place_atoms<G: GraphView>(
    g: &G,
    atoms: &[CompiledAtom],
    mu: &[NodeId],
    i: usize,
    scratch: &mut VerifyScratch,
    paths: &mut Vec<Vec<NodeId>>,
) -> bool {
    if i == atoms.len() {
        return true;
    }
    let atom = &atoms[i];
    let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
    let mut placed = false;
    // Snapshot of the blocked set for the enumeration: `try_rest` restores
    // `used` to exactly this state before the enumerator resumes, so the
    // snapshot stays accurate throughout. The snapshot buffer is pooled
    // per depth; it is moved out so the closure can borrow `scratch`.
    let mut blocked = std::mem::replace(&mut scratch.blocked[i], BitSet::new(0));
    blocked.copy_from(&scratch.used);
    let complete = if atom.src == atom.dst {
        rpq::for_each_simple_cycle(g, &atom.nfa, s, &blocked, |path| {
            try_rest(g, atoms, mu, i, scratch, path, &mut placed, paths)
        })
    } else {
        rpq::for_each_simple_path(g, &atom.nfa, s, d, &blocked, |path| {
            try_rest(g, atoms, mu, i, scratch, path, &mut placed, paths)
        })
    };
    scratch.blocked[i] = blocked;
    debug_assert!(complete || placed);
    placed
}

fn try_rest<G: GraphView>(
    g: &G,
    atoms: &[CompiledAtom],
    mu: &[NodeId],
    i: usize,
    scratch: &mut VerifyScratch,
    path: &[NodeId],
    placed: &mut bool,
    paths: &mut Vec<Vec<NodeId>>,
) -> ControlFlow<()> {
    // Internal nodes of `path` (endpoints are μ-images, already in `used`);
    // the buffer is pooled per depth.
    let mut internals = std::mem::take(&mut scratch.internals[i]);
    internals.clear();
    internals.extend(
        path[1..path.len().saturating_sub(1)]
            .iter()
            .copied()
            .filter(|n| !scratch.used.contains(n.index())),
    );
    debug_assert_eq!(
        internals.len(),
        path.len().saturating_sub(2),
        "simple-path search must avoid used internals"
    );
    for n in &internals {
        scratch.used.insert(n.index());
    }
    paths.truncate(i);
    paths.push(path.to_vec());
    let ok = place_atoms(g, atoms, mu, i + 1, scratch, paths);
    for n in &internals {
        scratch.used.remove(n.index());
    }
    scratch.internals[i] = internals;
    if ok {
        *placed = true;
        ControlFlow::Break(())
    } else {
        ControlFlow::Continue(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_graph::{GraphBuilder, GraphDb};
    use crpq_query::parse_crpq;

    /// Builds a graph and keeps the shared alphabet for queries.
    fn graph(edges: &[(&str, &str, &str)]) -> GraphDb {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        b.finish()
    }

    fn q(text: &str, g: &mut GraphDb) -> Crpq {
        parse_crpq(text, g.alphabet_mut()).unwrap()
    }

    fn node(g: &GraphDb, n: &str) -> NodeId {
        g.node_by_name(n).unwrap()
    }

    /// Figure 2 reconstruction (G): u -a-> v -b-> w, w -c-> v -c-> u.
    /// Satisfies Example 2.1's claims: (u,w) ∈ a-inj \ q-inj, st = a-inj.
    fn example21_g() -> GraphDb {
        graph(&[
            ("u", "a", "v"),
            ("v", "b", "w"),
            ("w", "c", "v"),
            ("v", "c", "u"),
        ])
    }

    /// Figure 2 reconstruction (G′): abab-walk from u to v repeats u;
    /// (u,v) ∈ st \ a-inj.
    fn example21_gprime() -> GraphDb {
        graph(&[
            ("u", "a", "w"),
            ("w", "b", "t"),
            ("t", "a", "u"),
            ("u", "b", "v"),
            ("v", "c", "u"),
        ])
    }

    #[test]
    fn example_2_1_graph_g() {
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        let (u, w) = (node(&g, "u"), node(&g, "w"));
        // (u, w) ∈ a-inj but ∉ q-inj:
        assert!(eval_contains(&query, &g, &[u, w], Semantics::AtomInjective));
        assert!(!eval_contains(
            &query,
            &g,
            &[u, w],
            Semantics::QueryInjective
        ));
        // st = a-inj on G:
        let st = eval_tuples(&query, &g, Semantics::Standard);
        let ainj = eval_tuples(&query, &g, Semantics::AtomInjective);
        assert_eq!(st, ainj);
    }

    #[test]
    fn example_2_1_graph_gprime() {
        let mut g = example21_gprime();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        let (u, v) = (node(&g, "u"), node(&g, "v"));
        // (u, v) ∈ st (walk u a w b t a u b v + c edge back) but ∉ a-inj
        // (every (ab)^k path u→v repeats u).
        assert!(eval_contains(&query, &g, &[u, v], Semantics::Standard));
        assert!(!eval_contains(
            &query,
            &g,
            &[u, v],
            Semantics::AtomInjective
        ));
    }

    #[test]
    fn diagonal_pairs_from_epsilon() {
        // Both languages contain ε, so (n, n) holds for every node under all
        // semantics via the collapsed variant.
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        for n in g.nodes() {
            for sem in Semantics::ALL {
                assert!(
                    eval_contains(&query, &g, &[n, n], sem),
                    "({n:?},{n:?}) under {sem}"
                );
            }
        }
    }

    #[test]
    fn intro_example_atom_injective() {
        // §1: Q = ∃x,y,z x -(a+b)+-> y ∧ x -(b+c)+-> z holds on a b-path
        // under a-inj (overlapping paths allowed).
        let mut g = graph(&[("n0", "b", "n1"), ("n1", "b", "n2")]);
        let query = q("x -[(a+b)(a+b)*]-> y, x -[(b+c)(b+c)*]-> z", &mut g);
        assert!(eval_boolean(&query, &g, Semantics::Standard));
        assert!(eval_boolean(&query, &g, Semantics::AtomInjective));
        // Under q-inj the two paths must be internally disjoint; on a single
        // b-path they can still be chosen as prefixes of different length
        // (e.g. y=n1, z=n2: paths n0→n1 and n0→n1→n2 share internal? path1
        // has no internal, path2 has internal n1 = image of y → blocked).
        // y=n1 (path n0-b->n1), z=n2 needs n0→n2 with internal n1 which is
        // μ(y): forbidden. Swapping roles is symmetric; y=z impossible
        // (injective). Hence q-inj fails.
        assert!(!eval_boolean(&query, &g, Semantics::QueryInjective));
    }

    #[test]
    fn query_injective_on_disjoint_branches() {
        // Two node-disjoint b/c branches from the root: q-inj succeeds.
        let mut g = graph(&[("r", "b", "p1"), ("p1", "b", "p2"), ("r", "c", "q1")]);
        let query = q("x -[(a+b)(a+b)*]-> y, x -[(b+c)(b+c)*]-> z", &mut g);
        assert!(eval_boolean(&query, &g, Semantics::QueryInjective));
    }

    #[test]
    fn self_loop_atom_semantics() {
        // x -[a a]-> x requires a simple 2-cycle under injective semantics;
        // a self-loop a-edge only yields the 1-cycle "a".
        let mut g = graph(&[("u", "a", "v"), ("v", "a", "u")]);
        let query = q("x -[a a]-> x", &mut g);
        for sem in Semantics::ALL {
            assert!(eval_boolean(&query, &g, sem), "2-cycle exists under {sem}");
        }
        let mut g2 = graph(&[("u", "a", "u")]);
        let query2 = q("x -[a a]-> x", &mut g2);
        assert!(
            eval_boolean(&query2, &g2, Semantics::Standard),
            "loop twice"
        );
        assert!(
            !eval_boolean(&query2, &g2, Semantics::AtomInjective),
            "aa is not a simple cycle on a self-loop"
        );
        assert!(!eval_boolean(&query2, &g2, Semantics::QueryInjective));
    }

    #[test]
    fn distinct_vars_same_node_standard_only() {
        // Q(x,y) = x -a-> y with tuple (u, u): needs a-loop at u.
        let mut g = graph(&[("u", "a", "u"), ("u", "a", "v")]);
        let query = q("(x, y) <- x -[a]-> y", &mut g);
        let u = node(&g, "u");
        assert!(eval_contains(&query, &g, &[u, u], Semantics::Standard));
        // a-inj: path from u to u must be simple, i.e. empty — but `a` is not ε.
        assert!(!eval_contains(
            &query,
            &g,
            &[u, u],
            Semantics::AtomInjective
        ));
        // q-inj additionally needs μ injective: x≠y map to same node — no.
        assert!(!eval_contains(
            &query,
            &g,
            &[u, u],
            Semantics::QueryInjective
        ));
    }

    #[test]
    fn tuple_enumeration_matches_membership() {
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        for sem in Semantics::ALL {
            let tuples = eval_tuples(&query, &g, sem);
            for n1 in g.nodes() {
                for n2 in g.nodes() {
                    let member = eval_contains(&query, &g, &[n1, n2], sem);
                    assert_eq!(
                        tuples.contains(&vec![n1, n2]),
                        member,
                        "{n1:?},{n2:?} {sem}"
                    );
                }
            }
        }
    }

    #[test]
    fn join_and_enumeration_agree_on_examples() {
        for mut g in [example21_g(), example21_gprime()] {
            let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
            for sem in Semantics::ALL {
                assert_eq!(
                    eval_tuples_with(&query, &g, sem, EvalStrategy::Join),
                    eval_tuples_with(&query, &g, sem, EvalStrategy::Enumerate),
                    "strategy mismatch under {sem}"
                );
            }
        }
    }

    #[test]
    fn join_handles_existential_variables() {
        // Free y only; x, z existential: projection + dedup across
        // existential witnesses.
        let mut g = graph(&[
            ("a0", "a", "m"),
            ("a1", "a", "m"),
            ("m", "b", "t0"),
            ("m", "b", "t1"),
        ]);
        let query = q("(y) <- x -[a]-> y, y -[b]-> z", &mut g);
        for sem in Semantics::ALL {
            let join = eval_tuples_with(&query, &g, sem, EvalStrategy::Join);
            let oracle = eval_tuples_with(&query, &g, sem, EvalStrategy::Enumerate);
            assert_eq!(join, oracle, "under {sem}");
            assert_eq!(join, vec![vec![node(&g, "m")]], "under {sem}");
        }
    }

    #[test]
    fn join_repeated_free_variable() {
        // Collapsed variants produce repeated free vars; also test a query
        // whose free tuple repeats a variable directly.
        let mut g = graph(&[("u", "a", "u"), ("u", "a", "v")]);
        let query = q("(x, x) <- x -[a]-> y", &mut g);
        for sem in Semantics::ALL {
            assert_eq!(
                eval_tuples_with(&query, &g, sem, EvalStrategy::Join),
                eval_tuples_with(&query, &g, sem, EvalStrategy::Enumerate),
                "under {sem}"
            );
        }
    }

    #[test]
    fn boolean_query_with_no_atoms() {
        let mut g = graph(&[("u", "a", "v")]);
        let query = q("(x) <- true", &mut g);
        let tuples = eval_tuples(&query, &g, Semantics::QueryInjective);
        assert_eq!(tuples.len(), g.num_nodes());
    }

    #[test]
    fn empty_graph_rejects_atoms() {
        let mut b = GraphBuilder::new();
        b.node("only");
        let mut g = b.finish();
        let query = q("x -[a]-> y", &mut g);
        for sem in Semantics::ALL {
            assert!(!eval_boolean(&query, &g, sem));
            assert!(eval_tuples(&query, &g, sem).is_empty());
        }
    }

    #[test]
    fn analyzed_evaluator_agrees_with_exact() {
        // a* and (a b)* atoms: the first is deletion-closed (fast path),
        // the second is not; results must coincide with the exact engine.
        let mut g = example21_g();
        let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
        for sem in Semantics::ALL {
            assert_eq!(
                eval_tuples(&query, &g, sem),
                eval_tuples_analyzed(&query, &g, sem),
                "analyzed engine must agree under {sem}"
            );
        }
    }

    #[test]
    fn fast_path_is_exact_on_parity_trap() {
        // Walk witnesses exist for a* even where simple-path search must
        // prune: a graph with a long detour through a revisited hub.
        let mut g = graph(&[
            ("s", "a", "h"),
            ("h", "a", "m"),
            ("m", "a", "h"),
            ("h", "a", "t"),
        ]);
        let query = q("(x, y) <- x -[a a*]-> y", &mut g);
        let (s, t) = (node(&g, "s"), node(&g, "t"));
        assert!(eval_contains(&query, &g, &[s, t], Semantics::AtomInjective));
        assert!(eval_contains_analyzed(
            &query,
            &g,
            &[s, t],
            Semantics::AtomInjective
        ));
        // (a a)* is NOT deletion-closed: no fast path, and the parity
        // matters — s →a→ h →a→ t is the only simple even path... of length
        // 2, which exists; extend the trap so only odd simple paths exist.
        let query2 = q("(x, y) <- x -[(a a)*]-> y", &mut g);
        assert_eq!(
            eval_contains(&query2, &g, &[s, t], Semantics::AtomInjective),
            eval_contains_analyzed(&query2, &g, &[s, t], Semantics::AtomInjective),
        );
    }

    /// Builds the join plan of the query's first ε-free variant.
    fn first_variant_plan_is_cyclic(q: &Crpq, g: &GraphDb) -> bool {
        let variants = q.epsilon_free_union();
        let mut catalog = RelationCatalog::new(g);
        let plan = plan_variant(&variants[0], g, false, &mut catalog);
        JoinPlan::build(&variants[0], g, Semantics::Standard, plan, &catalog).is_cyclic()
    }

    #[test]
    fn cyclic_shape_detection() {
        let mut g = graph(&[("u", "a", "v"), ("v", "b", "w"), ("w", "c", "u")]);
        // Chain and star: forests, acyclic.
        let chain = q("x -[a]-> y, y -[b]-> z", &mut g);
        assert!(!first_variant_plan_is_cyclic(&chain, &g));
        let star = q("x -[a]-> y, x -[b]-> z", &mut g);
        assert!(!first_variant_plan_is_cyclic(&star, &g));
        // Triangle closes a cycle.
        let triangle = q("x -[a]-> y, y -[b]-> z, z -[c]-> x", &mut g);
        assert!(first_variant_plan_is_cyclic(&triangle, &g));
        // Parallel atoms between the same pair are a cycle in the
        // atom–variable incidence graph.
        let parallel = q("x -[a]-> y, x -[b]-> y", &mut g);
        assert!(first_variant_plan_is_cyclic(&parallel, &g));
        // A self-loop atom is folded into the domain — no cycle.
        let self_loop = q("x -[a]-> y, y -[b c]-> y", &mut g);
        assert!(!first_variant_plan_is_cyclic(&self_loop, &g));
    }

    #[test]
    fn wcoj_and_binary_join_agree_on_cyclic_and_acyclic_shapes() {
        let mut g = graph(&[
            ("u", "a", "v"),
            ("v", "b", "w"),
            ("w", "c", "u"),
            ("v", "a", "w"),
            ("w", "b", "u"),
            ("u", "c", "v"),
        ]);
        for text in [
            "(x, y, z) <- x -[a]-> y, y -[b]-> z, z -[c]-> x",
            "(x, y) <- x -[a]-> y, y -[b]-> z",
            "(x) <- x -[(a b)*]-> y, y -[c*]-> x",
        ] {
            let query = q(text, &mut g);
            for sem in Semantics::ALL {
                let auto = eval_tuples_with(&query, &g, sem, EvalStrategy::Join);
                let binary = eval_tuples_with(&query, &g, sem, EvalStrategy::BinaryJoin);
                let wcoj = eval_tuples_with(&query, &g, sem, EvalStrategy::Wcoj);
                let oracle = eval_tuples_with(&query, &g, sem, EvalStrategy::Enumerate);
                assert_eq!(auto, oracle, "{text} auto vs oracle under {sem}");
                assert_eq!(binary, oracle, "{text} binary vs oracle under {sem}");
                assert_eq!(wcoj, oracle, "{text} wcoj vs oracle under {sem}");
            }
        }
    }

    #[test]
    fn hierarchy_inclusion_on_examples() {
        for mut g in [example21_g(), example21_gprime()] {
            let query = q("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut g);
            let st = eval_tuples(&query, &g, Semantics::Standard);
            let ai = eval_tuples(&query, &g, Semantics::AtomInjective);
            let qi = eval_tuples(&query, &g, Semantics::QueryInjective);
            for t in &qi {
                assert!(ai.contains(t), "q-inj ⊆ a-inj violated at {t:?}");
            }
            for t in &ai {
                assert!(st.contains(t), "a-inj ⊆ st violated at {t:?}");
            }
        }
    }

    /// Compiles the `i`-th atom NFA of a single-variant query — the unit
    /// catalog lookups are keyed by.
    fn atom_nfa(query: &Crpq, i: usize) -> Nfa {
        compile_atoms(&query.epsilon_free_union()[0], false)[i]
            .nfa
            .clone()
    }

    #[test]
    fn invalidate_label_evicts_only_footprint_matches() {
        let mut g = graph(&[("u", "a", "v"), ("v", "b", "w"), ("w", "c", "u")]);
        let query = q("(x, y) <- x -[a b*]-> y, y -[c]-> z", &mut g);
        let (ab, c) = (atom_nfa(&query, 0), atom_nfa(&query, 1));
        let mut catalog = RelationCatalog::new(&g);
        let ab_id = catalog.get_or_materialize(&g, &ab);
        let c_id = catalog.get_or_materialize(&g, &c);
        assert_eq!(catalog.cached_entries(), 2);

        // A `b`-mutation touches only the `a b*` atom's footprint.
        let b = g.alphabet().get("b").unwrap();
        assert_eq!(catalog.invalidate_label(b), 1);
        assert_eq!(catalog.evictions(), 1);
        assert_eq!(catalog.cached_entries(), 1);
        // The `c` entry survives as a hit; the evicted one re-materialises
        // into its recycled slot.
        let hits_before = catalog.hits();
        assert_eq!(catalog.get_or_materialize(&g, &c), c_id);
        assert_eq!(catalog.hits(), hits_before + 1);
        let misses_before = catalog.misses();
        assert_eq!(catalog.get_or_materialize(&g, &ab), ab_id);
        assert_eq!(catalog.misses(), misses_before + 1);

        // A label no footprint mentions evicts nothing.
        let d = g.alphabet_mut().intern("d");
        assert_eq!(catalog.invalidate_label(d), 0);
        assert_eq!(catalog.cached_entries(), 2);
    }

    #[test]
    fn invalidate_all_and_rebind_clear_everything() {
        let mut g = graph(&[("u", "a", "v"), ("v", "b", "w")]);
        let query = q("(x, z) <- x -[a]-> y, y -[b]-> z", &mut g);
        let (a, b) = (atom_nfa(&query, 0), atom_nfa(&query, 1));
        let mut catalog = RelationCatalog::new(&g);
        catalog.get_or_materialize(&g, &a);
        catalog.get_or_materialize(&g, &b);
        assert_eq!(catalog.invalidate_all(), 2);
        assert_eq!(catalog.cached_entries(), 0);
        assert_eq!(catalog.evictions(), 2);

        catalog.get_or_materialize(&g, &a);
        catalog.rebind(&g);
        assert_eq!(catalog.cached_entries(), 0);
        assert_eq!(catalog.evictions(), 3);
        // Rebinding re-anchors the fingerprint; lookups keep working.
        catalog.get_or_materialize(&g, &a);
        assert_eq!(catalog.cached_entries(), 1);
    }

    #[test]
    fn catalog_serves_delta_graph_across_mutations() {
        use crpq_graph::DeltaGraph;
        let base = graph(&[("u", "a", "v"), ("v", "b", "w"), ("u", "b", "w")]);
        let mut g = DeltaGraph::new(base);
        let mut alphabet = g.base().alphabet().clone();
        let query = parse_crpq("(x, y) <- x -[a b]-> y", &mut alphabet).unwrap();
        let nfa = atom_nfa(&query, 0);
        let (a, b) = (alphabet.get("a").unwrap(), alphabet.get("b").unwrap());

        let mut catalog = RelationCatalog::new(&g);
        let before = eval_tuples_with_catalog(&query, &g, Semantics::Standard, &mut catalog);
        assert_eq!(before.len(), 1, "u -a-> v -b-> w");

        // Mutate `b`: the cached `a b` relation must be evicted (its
        // footprint is {a, b}) and the post-mutation answers must match a
        // from-scratch evaluation.
        let (u, w) = (NodeId(0), NodeId(2));
        assert!(g.delete_edge(NodeId(1), b, w));
        assert!(g.insert_edge(w, a, u));
        assert_eq!(catalog.invalidate_label(b), 1);
        let after = eval_tuples_with_catalog(&query, &g, Semantics::Standard, &mut catalog);
        let fresh = eval_tuples(&query, &g, Semantics::Standard);
        assert_eq!(after, fresh, "catalog reuse must match rebuild");
        assert!(catalog.get_or_materialize(&g, &nfa) < catalog.len());
    }
}
