//! Constructive evaluation: **witness extraction and verification**.
//!
//! [`eval_witness`] strengthens [`eval_contains`](crate::eval_contains) from
//! a boolean to a fully materialised certificate: the ε-free variant used,
//! the node image of every variable, and one concrete node path per atom.
//! [`verify_witness`] checks such a certificate *independently* of the
//! search (NFA state-set simulation over the path's edge labels plus the
//! simplicity/disjointness conditions of §2.1), so the pair serves both as
//! a user-facing explain feature and as a self-check of the evaluator: an
//! extracted witness must always verify, and membership must hold exactly
//! when a witness exists.
//!
//! ```
//! use crpq_core::{eval_witness, verify_witness, Semantics};
//! use crpq_graph::GraphBuilder;
//! use crpq_query::parse_crpq;
//!
//! let mut b = GraphBuilder::new();
//! b.edge("ada", "knows", "carl").edge("carl", "knows", "emmy");
//! let mut g = b.finish();
//! let q = parse_crpq("(x, y) <- x -[knows knows*]-> y", g.alphabet_mut()).unwrap();
//! let (src, dst) = (g.node_by_name("ada").unwrap(), g.node_by_name("emmy").unwrap());
//!
//! let w = eval_witness(&q, &g, &[src, dst], Semantics::QueryInjective).unwrap();
//! assert_eq!(w.atom_paths.len(), 1);
//! assert_eq!(w.atom_paths[0].len(), 3); // ada → carl → emmy
//! assert!(verify_witness(&q, &g, &[src, dst], Semantics::QueryInjective, &w).is_ok());
//! ```

use crate::eval::{Semantics, VariantEval};
use crpq_automata::Nfa;
use crpq_graph::{GraphDb, NodeId};
use crpq_query::Crpq;
use crpq_util::{BitSet, FxHashSet};

/// A materialised certificate for `tuple ∈ Q(G)★`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Witness {
    /// Index of the ε-free variant (within
    /// [`Crpq::epsilon_free_union`]) the witness instantiates.
    pub variant_index: usize,
    /// Node image `μ(v)` of every variable of that variant, indexed by
    /// variable.
    pub assignment: Vec<NodeId>,
    /// One node path per atom of the variant; `path[0] = μ(src)` and
    /// `path.last() = μ(dst)`. A length-1 path is the empty path.
    pub atom_paths: Vec<Vec<NodeId>>,
}

/// Why a candidate [`Witness`] fails verification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessError {
    /// `variant_index` does not name an ε-free variant of the query.
    VariantOutOfRange,
    /// The assignment does not cover exactly the variant's variables.
    AssignmentArity,
    /// A free variable is not mapped to the corresponding tuple node.
    FreeTupleMismatch,
    /// An atom path does not start/end at the images of its variables.
    EndpointMismatch {
        /// Offending atom index.
        atom: usize,
    },
    /// An atom path is not realisable with a label word in the atom's
    /// language (missing edge or no accepting labelling).
    LabelNotAccepted {
        /// Offending atom index.
        atom: usize,
    },
    /// Under an injective semantics, an atom path repeats a node (or a
    /// self-loop atom is not a simple cycle).
    NotSimple {
        /// Offending atom index.
        atom: usize,
    },
    /// Under query-injective semantics, two distinct variables share an
    /// image.
    NotInjectiveAssignment,
    /// Under query-injective semantics, an internal path node is shared
    /// with another path or with a variable image.
    SharedInternalNode {
        /// The shared node.
        node: NodeId,
    },
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::VariantOutOfRange => write!(f, "variant index out of range"),
            WitnessError::AssignmentArity => write!(f, "assignment arity mismatch"),
            WitnessError::FreeTupleMismatch => write!(f, "free variables not mapped to the tuple"),
            WitnessError::EndpointMismatch { atom } => {
                write!(
                    f,
                    "atom {atom}: path endpoints differ from the variable images"
                )
            }
            WitnessError::LabelNotAccepted { atom } => {
                write!(
                    f,
                    "atom {atom}: no labelling of the path lies in the atom language"
                )
            }
            WitnessError::NotSimple { atom } => {
                write!(f, "atom {atom}: path is not simple (or not a simple cycle)")
            }
            WitnessError::NotInjectiveAssignment => {
                write!(f, "assignment is not injective")
            }
            WitnessError::SharedInternalNode { node } => {
                write!(
                    f,
                    "internal node {node:?} shared across paths or with a variable image"
                )
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// Searches for a witness of `tuple ∈ Q(G)★`.
///
/// Returns `Some` exactly when
/// [`eval_contains`](crate::eval_contains) returns `true`; the returned
/// witness always passes [`verify_witness`].
pub fn eval_witness(q: &Crpq, g: &GraphDb, tuple: &[NodeId], sem: Semantics) -> Option<Witness> {
    assert_eq!(
        q.free.len(),
        tuple.len(),
        "tuple arity must match free tuple"
    );
    for (variant_index, variant) in q.epsilon_free_union().iter().enumerate() {
        if let Some((assignment, atom_paths)) =
            VariantEval::new(variant, g, sem).contains_witness(tuple)
        {
            return Some(Witness {
                variant_index,
                assignment,
                atom_paths,
            });
        }
    }
    None
}

/// Checks a [`Witness`] against the query, graph, tuple and semantics,
/// independently of how it was produced.
pub fn verify_witness(
    q: &Crpq,
    g: &GraphDb,
    tuple: &[NodeId],
    sem: Semantics,
    w: &Witness,
) -> Result<(), WitnessError> {
    let variants = q.epsilon_free_union();
    let variant = variants
        .get(w.variant_index)
        .ok_or(WitnessError::VariantOutOfRange)?;
    if w.assignment.len() != variant.num_vars || w.atom_paths.len() != variant.atoms.len() {
        return Err(WitnessError::AssignmentArity);
    }
    if variant
        .free
        .iter()
        .zip(tuple)
        .any(|(&v, &n)| w.assignment[v.index()] != n)
    {
        return Err(WitnessError::FreeTupleMismatch);
    }

    for (i, (atom, path)) in variant.atoms.iter().zip(&w.atom_paths).enumerate() {
        let (s, d) = (
            w.assignment[atom.src.index()],
            w.assignment[atom.dst.index()],
        );
        if path.first() != Some(&s) || path.last() != Some(&d) {
            return Err(WitnessError::EndpointMismatch { atom: i });
        }
        if !path_matches_language(g, &atom.nfa(), path) {
            return Err(WitnessError::LabelNotAccepted { atom: i });
        }
        if sem != Semantics::Standard && !is_simple(atom.src == atom.dst, path) {
            return Err(WitnessError::NotSimple { atom: i });
        }
    }

    if sem == Semantics::QueryInjective {
        let distinct: FxHashSet<NodeId> = w.assignment.iter().copied().collect();
        if distinct.len() != w.assignment.len() {
            return Err(WitnessError::NotInjectiveAssignment);
        }
        // Internal nodes must be globally fresh: not a variable image, and
        // not internal to any other path.
        let mut used: FxHashSet<NodeId> = w.assignment.iter().copied().collect();
        for path in &w.atom_paths {
            for &n in path.iter().take(path.len().saturating_sub(1)).skip(1) {
                if !used.insert(n) {
                    return Err(WitnessError::SharedInternalNode { node: n });
                }
            }
        }
    }
    Ok(())
}

/// Whether some labelling of the node path is accepted by the NFA —
/// state-set simulation where each step may use any parallel edge label.
fn path_matches_language(g: &GraphDb, nfa: &Nfa, path: &[NodeId]) -> bool {
    let mut states = nfa.initials().clone();
    for win in path.windows(2) {
        let (u, v) = (win[0], win[1]);
        let mut next = BitSet::new(nfa.num_states());
        for &(sym, to) in g.out_edges(u) {
            if to == v {
                next.union_with(&nfa.delta_set(&states, sym));
            }
        }
        states = next;
        if states.is_empty() {
            return false;
        }
    }
    states.iter().any(|q| nfa.is_final(q as u32))
}

/// Simple-path / simple-cycle check per §2: all nodes pairwise distinct, or
/// (for self-loop atoms) first = last with internal nodes pairwise distinct
/// and at least one edge.
fn is_simple(cycle: bool, path: &[NodeId]) -> bool {
    if cycle {
        if path.len() < 2 || path.first() != path.last() {
            return false;
        }
        let mut seen = FxHashSet::default();
        path[..path.len() - 1].iter().all(|&n| seen.insert(n))
    } else {
        let mut seen = FxHashSet::default();
        path.iter().all(|&n| seen.insert(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_contains;
    use crpq_graph::GraphBuilder;
    use crpq_query::parse_crpq;

    fn graph(edges: &[(&str, &str, &str)]) -> GraphDb {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        b.finish()
    }

    fn example21_g() -> GraphDb {
        graph(&[
            ("u", "a", "v"),
            ("v", "b", "w"),
            ("w", "c", "v"),
            ("v", "c", "u"),
        ])
    }

    fn n(g: &GraphDb, s: &str) -> NodeId {
        g.node_by_name(s).unwrap()
    }

    #[test]
    fn witness_exists_iff_member_and_verifies() {
        let mut g = example21_g();
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            for a in g.nodes() {
                for b in g.nodes() {
                    let member = eval_contains(&q, &g, &[a, b], sem);
                    let witness = eval_witness(&q, &g, &[a, b], sem);
                    assert_eq!(member, witness.is_some(), "({a:?},{b:?}) {sem}");
                    if let Some(w) = witness {
                        verify_witness(&q, &g, &[a, b], sem, &w)
                            .unwrap_or_else(|e| panic!("({a:?},{b:?}) {sem}: {e}"));
                    }
                }
            }
        }
    }

    #[test]
    fn standard_witness_is_shortest_per_atom() {
        let mut g = graph(&[("u", "a", "v"), ("v", "a", "w"), ("u", "a", "w")]);
        let q = parse_crpq("(x, y) <- x -[a a*]-> y", g.alphabet_mut()).unwrap();
        let w = eval_witness(&q, &g, &[n(&g, "u"), n(&g, "w")], Semantics::Standard).unwrap();
        assert_eq!(w.atom_paths[0].len(), 2, "direct edge is shortest");
    }

    #[test]
    fn qinj_witness_paths_are_disjoint() {
        let mut g = graph(&[
            ("r", "b", "p1"),
            ("p1", "b", "p2"),
            ("r", "c", "q1"),
            ("q1", "c", "q2"),
        ]);
        let q = parse_crpq("x -[b b]-> y, x -[c c]-> z", g.alphabet_mut()).unwrap();
        let w = eval_witness(&q, &g, &[], Semantics::QueryInjective).unwrap();
        verify_witness(&q, &g, &[], Semantics::QueryInjective, &w).unwrap();
        // Tamper: make both paths the b-branch — must now fail.
        let mut bad = w.clone();
        bad.atom_paths[1] = bad.atom_paths[0].clone();
        assert!(verify_witness(&q, &g, &[], Semantics::QueryInjective, &bad).is_err());
    }

    #[test]
    fn tampered_witnesses_are_rejected() {
        let mut g = example21_g();
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
        let (u, w_node) = (n(&g, "u"), n(&g, "w"));
        let w = eval_witness(&q, &g, &[u, w_node], Semantics::AtomInjective).unwrap();
        // Wrong variant index.
        let mut bad = w.clone();
        bad.variant_index = 99;
        assert_eq!(
            verify_witness(&q, &g, &[u, w_node], Semantics::AtomInjective, &bad),
            Err(WitnessError::VariantOutOfRange)
        );
        // Truncated path breaks the endpoint condition.
        let mut bad = w.clone();
        if bad.atom_paths[0].len() > 1 {
            bad.atom_paths[0].pop();
            assert!(verify_witness(&q, &g, &[u, w_node], Semantics::AtomInjective, &bad).is_err());
        }
        // Wrong tuple.
        assert!(verify_witness(&q, &g, &[w_node, u], Semantics::AtomInjective, &w).is_err());
    }

    #[test]
    fn self_loop_atom_witness_is_simple_cycle() {
        let mut g = graph(&[("u", "a", "v"), ("v", "a", "u")]);
        let q = parse_crpq("x -[a a]-> x", g.alphabet_mut()).unwrap();
        for sem in [Semantics::AtomInjective, Semantics::QueryInjective] {
            let w = eval_witness(&q, &g, &[], sem).unwrap();
            assert_eq!(w.atom_paths[0].len(), 3);
            assert_eq!(w.atom_paths[0][0], w.atom_paths[0][2]);
            verify_witness(&q, &g, &[], sem, &w).unwrap();
        }
    }

    #[test]
    fn nonsimple_path_rejected_under_injective() {
        // G′-style walk witness is fine for st but not a-inj.
        let mut g = graph(&[
            ("u", "a", "w"),
            ("w", "b", "t"),
            ("t", "a", "u"),
            ("u", "b", "v"),
        ]);
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y", g.alphabet_mut()).unwrap();
        let (u, v) = (n(&g, "u"), n(&g, "v"));
        let w = eval_witness(&q, &g, &[u, v], Semantics::Standard).unwrap();
        assert!(verify_witness(&q, &g, &[u, v], Semantics::Standard, &w).is_ok());
        // The only (ab)*-walk u→v revisits u: reject under a-inj.
        assert!(matches!(
            verify_witness(&q, &g, &[u, v], Semantics::AtomInjective, &w),
            Err(WitnessError::NotSimple { .. })
        ));
        assert!(eval_witness(&q, &g, &[u, v], Semantics::AtomInjective).is_none());
    }
}
