//! Worst-case-optimal (Generic-Join-style) executor for cyclic variant
//! shapes.
//!
//! The backtracking binary join of [`crate::eval::JoinPlan::search_all`]
//! is provably suboptimal on cyclic CRPQ shapes: on a triangle over three
//! materialised atom relations it can touch `O(|R|²)` intermediate
//! bindings where the output is only `O(|R|^{3/2})` (the AGM bound). This
//! module implements the Generic Join recipe instead:
//!
//! 1. fix a **variable elimination order** up front (greedy: start from
//!    the smallest pruned domain, then repeatedly take the
//!    smallest-domain variable *adjacent to an already-ordered one*, so
//!    every level after the first is constrained by at least one bound
//!    relation row whenever the variant is connected);
//! 2. at each level, enumerate the variable's candidates by **leapfrog
//!    intersection** of sorted views — every relation row incident to the
//!    variable whose other endpoint is already bound, plus the semi-join
//!    pruned domain. All views expose the same seek primitive
//!    (`first_at_or_after`: binary search on sparse rows, word-scan on
//!    dense bitsets), so a candidate costs `O(Σ seeks)` with the
//!    **smallest view leading**, never a clone of the whole domain;
//! 3. at a complete assignment, run exactly the same per-semantics
//!    verification ([`JoinPlan::verify`] via [`VerifyScratch`]) and
//!    duplicate-projection prune as the binary join — the executors differ
//!    only in how they enumerate relation-consistent assignments.
//!
//! Under query-injective semantics already-used nodes are skipped during
//! enumeration (the binary join removes them from its candidate clone;
//! here they are filtered as the intersection streams by).
//!
//! This executor honours the streaming sink contract of
//! [`crate::eval`]: every level checks `should_stop` on entry, candidate
//! loops unwind on [`SinkStatus::Stop`], and each bind runs the inline
//! injectivity prune ([`JoinPlan::bind_allowed`], memoised per-atom
//! simple-path feasibility) before descending — both invariants are
//! documented in the `eval` module docs and must stay aligned with the
//! binary join.
//!
//! Dispatch lives in [`crate::eval`]: [`JoinPlan::is_cyclic`] sends cyclic
//! variants here under the default strategy, and
//! [`crate::eval::EvalStrategy::Wcoj`] forces this executor on any shape
//! (the fixed order handles acyclic variants too). Equivalence against the
//! binary join and the enumeration oracle is property-tested in
//! `tests/wcoj_equivalence.rs`.

use crate::eval::{JoinPlan, Semantics, SinkStatus, TupleSink, VerifyScratch};
use crpq_graph::rpq::{NodeSet, RelationRow};
use crpq_graph::GraphView;
use crpq_graph::NodeId;
use crpq_query::Var;

/// One sorted, seekable operand of the per-variable leapfrog intersection.
enum View<'a> {
    /// A relation row restricted by an already-bound neighbour.
    Row(RelationRow<'a>),
    /// The variable's semi-join pruned domain.
    Domain(&'a NodeSet),
}

impl View<'_> {
    /// The seek primitive: smallest id `≥ from` in the view.
    #[inline]
    fn first_at_or_after(&self, from: usize) -> Option<usize> {
        match self {
            View::Row(r) => r.first_at_or_after(from),
            View::Domain(d) => d.first_at_or_after(from),
        }
    }

    /// Ordering weight for the leapfrog lead: sparse views lead with their
    /// exact length; dense views (O(|V|/64) to measure exactly) follow
    /// behind all sparse ones. This keeps view selection O(1) per view —
    /// popcounting a dense bitset at every search-tree node would cost as
    /// much as the domain clones this executor exists to avoid.
    fn lead_weight(&self) -> usize {
        match self {
            View::Row(RelationRow::Sparse(ids)) => ids.len(),
            View::Domain(NodeSet::Sparse { ids, .. }) => ids.len(),
            View::Row(RelationRow::Dense(_)) | View::Domain(NodeSet::Dense(_)) => usize::MAX,
        }
    }
}

/// Runs the worst-case-optimal join to completion, inserting every
/// verified result projection into `out` — the WCOJ counterpart of
/// [`JoinPlan::search_all`].
pub(crate) fn search_all<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    scratch: &mut VerifyScratch,
    out: &mut dyn TupleSink,
) -> SinkStatus {
    if plan.is_empty() {
        return SinkStatus::Continue;
    }
    scratch.begin_plan(plan.num_nodes());
    let order = elimination_order(plan, None);
    let mut assignment: Vec<Option<NodeId>> = vec![None; plan.q.num_vars];
    bind_level(plan, &order, 0, &mut assignment, scratch, out)
}

/// The elimination order for [`search_with_fixed`] with `var` pinned as
/// its head. The order depends only on `(plan, var)` — workers partitioning
/// candidates of `var` compute it **once** and reuse it across every
/// `search_with_fixed` call instead of rebuilding it per candidate node.
pub(crate) fn fixed_order<G: GraphView>(plan: &JoinPlan<'_, G>, var: Var) -> Vec<Var> {
    elimination_order(plan, Some(var))
}

/// Like [`search_all`] with `var` (= `order[0]`, see [`fixed_order`])
/// pre-assigned to `node` — the work-partitioning entry point of
/// [`crate::parallel`]. `var` is pinned as the (already bound) head of the
/// elimination order so the remaining levels see it exactly as the
/// sequential executor would.
pub(crate) fn search_with_fixed<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    order: &[Var],
    node: NodeId,
    scratch: &mut VerifyScratch,
    out: &mut dyn TupleSink,
) -> SinkStatus {
    if plan.is_empty() {
        return SinkStatus::Continue;
    }
    let var = *order.first().expect("fixed_order pins the split variable"); // invariant: guaranteed by fixed_order
    let mut assignment: Vec<Option<NodeId>> = vec![None; plan.q.num_vars];
    if !plan.bind_allowed(var, node, &assignment, scratch) {
        return SinkStatus::Continue;
    }
    assignment[var.index()] = Some(node);
    bind_level(plan, order, 1, &mut assignment, scratch, out)
}

/// The static variable elimination order: `first` (when given) leads,
/// then greedily the unordered variable with the smallest pruned domain
/// among those **adjacent to an ordered one** — falling back to the
/// globally smallest domain when no unordered variable is adjacent (start
/// of a new connected component). Connectivity-first matters: a level
/// whose variable has no bound neighbour intersects nothing but its
/// domain, which degenerates to a cross product.
fn elimination_order<G: GraphView>(plan: &JoinPlan<'_, G>, first: Option<Var>) -> Vec<Var> {
    let n = plan.q.num_vars;
    let mut order: Vec<Var> = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    if let Some(v) = first {
        order.push(v);
        placed[v.index()] = true;
    }
    while order.len() < n {
        let adjacent = |v: usize| {
            plan.atoms.iter().any(|a| {
                (a.src.index() == v && placed[a.dst.index()])
                    || (a.dst.index() == v && placed[a.src.index()])
            })
        };
        let next = (0..n)
            .filter(|&v| !placed[v])
            .min_by_key(|&v| (!adjacent(v), plan.domains[v].len()))
            .expect("some variable is still unordered"); // invariant: the loop runs only while variables remain unordered
        order.push(Var(next as u32));
        placed[next] = true;
    }
    order
}

/// Continues the worst-case-optimal join from `level` of `order`, with the
/// variables of `order[..level]` already bound in `assignment` — the
/// subtree hand-off point of the work-stealing driver in
/// [`crate::parallel`]: a worker that has explicitly enumerated the
/// stealable prefix levels delegates the remaining subtree here.
pub(crate) fn search_from_level<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    order: &[Var],
    level: usize,
    assignment: &mut Vec<Option<NodeId>>,
    scratch: &mut VerifyScratch,
    out: &mut dyn TupleSink,
) -> SinkStatus {
    if plan.is_empty() {
        return SinkStatus::Continue;
    }
    bind_level(plan, order, level, assignment, scratch, out)
}

/// The candidates the leapfrog intersection would enumerate for
/// `order[level]` under the current partial assignment (query-injective
/// used-node filter included) — lets the work-stealing driver materialise
/// a level's domain as a splittable range instead of descending through
/// it. Must agree exactly with what [`bind_level`] enumerates; both go
/// through [`each_level_candidate`].
pub(crate) fn level_candidates<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    order: &[Var],
    level: usize,
    assignment: &mut Vec<Option<NodeId>>,
) -> Vec<NodeId> {
    let mut cands = Vec::new();
    each_level_candidate(plan, order, level, assignment, |_, node| {
        cands.push(node);
        SinkStatus::Continue
    });
    cands
}

/// Binds `order[level..]` one variable at a time by leapfrog intersection,
/// verifying and emitting complete assignments.
fn bind_level<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    order: &[Var],
    level: usize,
    assignment: &mut Vec<Option<NodeId>>,
    scratch: &mut VerifyScratch,
    out: &mut dyn TupleSink,
) -> SinkStatus {
    // Early exit: a stopped sink unwinds the whole search.
    if out.should_stop() {
        return SinkStatus::Stop;
    }
    // Duplicate-projection prune (same as the binary join): once every
    // free variable is bound, deeper levels only vary existential
    // variables — pointless if the projection is already a known result.
    let mut proj = std::mem::take(&mut scratch.tuple);
    let pruned = plan.projection_into(assignment, &mut proj) && out.contains_tuple(proj.as_slice());
    scratch.tuple = proj;
    if pruned {
        return SinkStatus::Continue;
    }
    if order.get(level).is_none() {
        // Complete assignment: standard consistency is guaranteed by the
        // views; verify the injective side and record the projection.
        let mut mu = std::mem::take(&mut scratch.mu);
        mu.clear();
        mu.extend(assignment.iter().map(|a| a.unwrap())); // invariant: every variable is bound at a leaf
        let ok = plan.verify(&mu, scratch);
        scratch.mu = mu;
        if ok {
            debug_assert_eq!(
                scratch.tuple.len(),
                plan.q.free.len(),
                "entry prune must have projected the complete assignment"
            );
            return out.insert_tuple(scratch.tuple.clone());
        }
        return SinkStatus::Continue;
    }
    let var = order[level];
    each_level_candidate(plan, order, level, assignment, |assignment, node| {
        if !plan.bind_allowed(var, node, assignment, scratch) {
            return SinkStatus::Continue;
        }
        assignment[var.index()] = Some(node);
        let status = bind_level(plan, order, level + 1, assignment, scratch, out);
        assignment[var.index()] = None;
        status
    })
}

/// Enumerates the candidates of `order[level]` by leapfrog intersection of
/// the restricting views, invoking `visit` once per candidate in ascending
/// id order until exhaustion or a [`SinkStatus::Stop`] from `visit` (which
/// is returned). Under query-injective semantics, nodes already used by
/// the assignment are filtered as the intersection streams by; the filter
/// re-reads `assignment` each round, so `visit` may bind and unbind
/// deeper variables between calls.
fn each_level_candidate<G: GraphView>(
    plan: &JoinPlan<'_, G>,
    order: &[Var],
    level: usize,
    assignment: &mut Vec<Option<NodeId>>,
    mut visit: impl FnMut(&mut Vec<Option<NodeId>>, NodeId) -> SinkStatus,
) -> SinkStatus {
    let var = order[level];
    // Collect the views restricting `var`: incident relation rows whose
    // other endpoint is bound, plus the pruned domain. Self-loop atoms
    // were folded into the domain at plan-build time.
    let mut views: Vec<View<'_>> = Vec::with_capacity(plan.atoms.len() + 1);
    for (atom, rel) in plan.atoms.iter().zip(&plan.relations) {
        if atom.src == atom.dst {
            continue;
        }
        if atom.src == var {
            if let Some(dst_node) = assignment[atom.dst.index()] {
                views.push(View::Row(rel.backward(dst_node)));
            }
        }
        if atom.dst == var {
            if let Some(src_node) = assignment[atom.src.index()] {
                views.push(View::Row(rel.forward(src_node)));
            }
        }
    }
    views.push(View::Domain(&plan.domains[var.index()]));
    // Lead with the (cheaply measurable) smallest view: leapfrog's outer
    // advance then steps through the fewest candidates.
    let lead = views
        .iter()
        .enumerate()
        .min_by_key(|(_, v)| v.lead_weight())
        .map(|(i, _)| i)
        .unwrap(); // invariant: a join plan has at least one view
    views.swap(0, lead);

    let inj = plan.sem == Semantics::QueryInjective;
    let mut lo = 0usize;
    'candidates: while let Some(first) = views[0].first_at_or_after(lo) {
        // Leapfrog round: raise `cand` through every view until all agree.
        let mut cand = first;
        let mut stable = false;
        while !stable {
            stable = true;
            for view in &views {
                match view.first_at_or_after(cand) {
                    None => break 'candidates,
                    Some(w) if w > cand => {
                        cand = w;
                        stable = false;
                    }
                    Some(_) => {}
                }
            }
        }
        lo = cand + 1;
        let node = NodeId(cand as u32);
        if inj && assignment.iter().flatten().any(|&used| used == node) {
            continue; // μ must be injective under q-inj
        }
        if visit(assignment, node) == SinkStatus::Stop {
            return SinkStatus::Stop;
        }
    }
    SinkStatus::Continue
}
