//! # crpq-core
//!
//! The paper's primary contribution as an executable library: evaluation of
//! CRPQs under the three semantics of §2.1 —
//!
//! * **standard** (`st`): atoms are witnessed by arbitrary paths;
//! * **atom-injective** (`a-inj`): each atom by a simple path (simple cycle
//!   for `x -L-> x` atoms), paths of different atoms may overlap;
//! * **query-injective** (`q-inj`): additionally, the variable assignment is
//!   injective and paths of distinct atoms share no internal nodes.
//!
//! Two independent evaluators are provided:
//!
//! * [`eval`] — the *direct* engine: backtracking over variable assignments
//!   with RPQ-reachability pruning, then per-atom path checks (arbitrary /
//!   simple / jointly-disjoint);
//! * [`expansion_eval`] — the *characterisation* engine implementing
//!   Prop 2.2/2.3 and Cor 4.5 literally: search an expansion
//!   `E ∈ Exp(Q)` with an (ordinary / atom-injective / injective)
//!   homomorphism into `(G, v̄)`.
//!
//! They must agree — that agreement is property-tested and is the deepest
//! internal consistency check of the reproduction.

pub mod eval;
pub mod expansion_eval;
pub mod hierarchy;
pub mod parallel;
pub mod stream;
pub mod trail;
pub(crate) mod wcoj;
pub mod witness;

pub use eval::{
    eval, eval_ask, eval_ask_with_catalog, eval_boolean, eval_contains, eval_contains_analyzed,
    eval_limit, eval_limit_with, eval_limit_with_catalog, eval_tuples, eval_tuples_analyzed,
    eval_tuples_enumerate, eval_tuples_join_unshared, eval_tuples_with, eval_tuples_with_catalog,
    EvalStrategy, RelationCatalog, Semantics,
};
pub use expansion_eval::{eval_contains_via_expansions, EvalOutcome};
pub use hierarchy::check_hierarchy;
pub use parallel::{
    eval_ask_parallel, eval_limit_parallel, eval_tuples_parallel, eval_tuples_parallel_static,
};
pub use stream::{eval_stream, eval_stream_parallel, eval_stream_with, TupleStream};
pub use trail::{eval_boolean_trail, eval_contains_trail, eval_tuples_trail, TrailSemantics};
pub use witness::{eval_witness, verify_witness, Witness, WitnessError};
