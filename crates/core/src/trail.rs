//! Trail (edge-injective) semantics — the paper's §7 outlook, implemented.
//!
//! The paper closes by proposing the edge-injective analogues of its two
//! semantics: **atom-edge-injective** (`a-trail`: each atom witnessed by a
//! trail — no repeated edge; closed trail for `x -L-> x` atoms) and
//! **query-edge-injective** (`q-trail`: additionally, witness trails of
//! distinct atoms are pairwise edge-disjoint). Unlike query-injective
//! semantics there is *no* injectivity requirement on the variable
//! assignment — only edges are consumed.
//!
//! The hierarchy (mirroring Remark 2.1, plus a cross-link to the
//! node-injective semantics) is:
//!
//! ```text
//! q-trail ⊆ a-trail ⊆ st        a-inj ⊆ a-trail
//! ```
//!
//! (simple paths are trails). Note that `q-inj ⊆ q-trail` does **not**
//! hold under this operational definition: two atoms may pick *identical*
//! witness paths under q-inj (their expansion atoms coincide after
//! deduplication, so a node-injective homomorphism exists), while q-trail
//! demands pairwise edge-disjoint trails. On instances whose witnesses
//! never duplicate a whole path the inclusion holds — see the tests. The
//! paper's §7 outlook leaves this definitional choice open; we take the
//! disjoint-trails reading (the natural "edge-consuming" semantics).

use crpq_automata::Nfa;
use crpq_graph::rpq::{self, Edge};
use crpq_graph::{GraphDb, NodeId};
use crpq_query::{Crpq, Var};
use crpq_util::{BitSet, FxHashMap, FxHashSet};
use std::collections::BTreeSet;
use std::ops::ControlFlow;

/// The two edge-injective semantics of §7.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrailSemantics {
    /// Each atom witnessed by a trail; trails may share edges across atoms.
    AtomTrail,
    /// Witness trails of distinct atoms are pairwise edge-disjoint.
    QueryTrail,
}

impl TrailSemantics {
    /// Both variants.
    pub const ALL: [TrailSemantics; 2] = [TrailSemantics::AtomTrail, TrailSemantics::QueryTrail];

    /// Short display name.
    pub fn short_name(self) -> &'static str {
        match self {
            TrailSemantics::AtomTrail => "a-trail",
            TrailSemantics::QueryTrail => "q-trail",
        }
    }
}

impl std::fmt::Display for TrailSemantics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Whether `tuple ∈ Q(G)_sem` under a trail semantics.
///
/// ```
/// use crpq_core::{eval_boolean_trail, TrailSemantics};
/// use crpq_graph::GraphBuilder;
/// use crpq_query::parse_crpq;
///
/// // Figure-of-eight: the trail a·b·c·d revisits m but repeats no edge.
/// let mut b = GraphBuilder::new();
/// b.edge("u", "a", "m").edge("m", "b", "n").edge("n", "c", "m").edge("m", "d", "v");
/// let mut g = b.finish();
/// let q = parse_crpq("x -[a b c d]-> y", g.alphabet_mut()).unwrap();
/// assert!(eval_boolean_trail(&q, &g, TrailSemantics::AtomTrail));
/// // No *simple path* spells abcd (m repeats):
/// use crpq_core::{eval_boolean, Semantics};
/// assert!(!eval_boolean(&q, &g, Semantics::AtomInjective));
/// ```
pub fn eval_contains_trail(q: &Crpq, g: &GraphDb, tuple: &[NodeId], sem: TrailSemantics) -> bool {
    assert_eq!(
        q.free.len(),
        tuple.len(),
        "tuple arity must match free tuple"
    );
    q.epsilon_free_union()
        .iter()
        .any(|variant| TrailEval::new(variant, g, sem).contains(tuple))
}

/// Whether the Boolean query holds under a trail semantics.
pub fn eval_boolean_trail(q: &Crpq, g: &GraphDb, sem: TrailSemantics) -> bool {
    assert!(
        q.is_boolean(),
        "eval_boolean_trail requires a Boolean query"
    );
    eval_contains_trail(q, g, &[], sem)
}

/// The full result set under a trail semantics (sorted, deduplicated).
pub fn eval_tuples_trail(q: &Crpq, g: &GraphDb, sem: TrailSemantics) -> Vec<Vec<NodeId>> {
    let mut out = BTreeSet::new();
    let variants = q.epsilon_free_union();
    let arity = q.free.len();
    let mut tuple = vec![NodeId(0); arity];
    fn rec(
        g: &GraphDb,
        variants: &[Crpq],
        sem: TrailSemantics,
        tuple: &mut Vec<NodeId>,
        pos: usize,
        out: &mut BTreeSet<Vec<NodeId>>,
    ) {
        if pos == tuple.len() {
            if variants
                .iter()
                .any(|v| TrailEval::new(v, g, sem).contains(tuple))
            {
                out.insert(tuple.clone());
            }
            return;
        }
        for v in g.nodes() {
            tuple[pos] = v;
            rec(g, variants, sem, tuple, pos + 1, out);
        }
    }
    rec(g, &variants, sem, &mut tuple, 0, &mut out);
    out.into_iter().collect()
}

struct TrailAtom {
    src: Var,
    dst: Var,
    nfa: Nfa,
    nfa_rev: Nfa,
}

struct TrailEval<'a> {
    g: &'a GraphDb,
    q: &'a Crpq,
    atoms: Vec<TrailAtom>,
    sem: TrailSemantics,
    reach_fwd: FxHashMap<(usize, NodeId), BitSet>,
    reach_back: FxHashMap<(usize, NodeId), BitSet>,
}

impl<'a> TrailEval<'a> {
    fn new(variant: &'a Crpq, g: &'a GraphDb, sem: TrailSemantics) -> Self {
        let atoms = variant
            .atoms
            .iter()
            .map(|a| {
                let nfa = a.nfa();
                debug_assert!(!nfa.accepts_epsilon(), "variants must be ε-free");
                TrailAtom {
                    src: a.src,
                    dst: a.dst,
                    nfa_rev: nfa.reverse(),
                    nfa,
                }
            })
            .collect();
        TrailEval {
            g,
            q: variant,
            atoms,
            sem,
            reach_fwd: FxHashMap::default(),
            reach_back: FxHashMap::default(),
        }
    }

    fn contains(&mut self, tuple: &[NodeId]) -> bool {
        let mut assignment: Vec<Option<NodeId>> = vec![None; self.q.num_vars];
        for (&v, &n) in self.q.free.iter().zip(tuple) {
            match assignment[v.index()] {
                Some(prev) if prev != n => return false,
                _ => assignment[v.index()] = Some(n),
            }
        }
        // NOTE: no injectivity requirement on μ under trail semantics.
        let mut found = false;
        let _ = self.search(&mut assignment, &mut |this, full| {
            if this.verify(full) {
                found = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        });
        found
    }

    fn search(
        &mut self,
        assignment: &mut Vec<Option<NodeId>>,
        visit: &mut dyn FnMut(&mut Self, &[NodeId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let mut best: Option<(Var, Vec<NodeId>)> = None;
        for v in 0..assignment.len() {
            if assignment[v].is_some() {
                continue;
            }
            let cands = self.candidates(Var(v as u32), assignment);
            if cands.is_empty() {
                return ControlFlow::Continue(());
            }
            let better = best.as_ref().is_none_or(|(_, c)| cands.len() < c.len());
            if better {
                let single = cands.len() == 1;
                best = Some((Var(v as u32), cands));
                if single {
                    break;
                }
            }
        }
        let Some((var, cands)) = best else {
            let full: Vec<NodeId> = assignment.iter().map(|a| a.unwrap()).collect(); // invariant: every variable is bound at a leaf
            return visit(self, &full);
        };
        for node in cands {
            assignment[var.index()] = Some(node);
            self.search(assignment, visit)?;
            assignment[var.index()] = None;
        }
        ControlFlow::Continue(())
    }

    fn reach_fwd(&mut self, atom: usize, from: NodeId) -> &BitSet {
        if !self.reach_fwd.contains_key(&(atom, from)) {
            let set = rpq::rpq_reach(self.g, &self.atoms[atom].nfa, from);
            self.reach_fwd.insert((atom, from), set);
        }
        &self.reach_fwd[&(atom, from)]
    }

    fn reach_back(&mut self, atom: usize, to: NodeId) -> &BitSet {
        if !self.reach_back.contains_key(&(atom, to)) {
            let set = rpq::rpq_reach_back(self.g, &self.atoms[atom].nfa_rev, to);
            self.reach_back.insert((atom, to), set);
        }
        &self.reach_back[&(atom, to)]
    }

    fn candidates(&mut self, var: Var, assignment: &[Option<NodeId>]) -> Vec<NodeId> {
        let mut domain: Option<BitSet> = None;
        let restrict = |domain: &mut Option<BitSet>, set: &BitSet| match domain {
            None => *domain = Some(set.clone()),
            Some(d) => d.intersect_with(set),
        };
        for i in 0..self.atoms.len() {
            let (src, dst) = (self.atoms[i].src, self.atoms[i].dst);
            if src == var && dst == var {
                continue;
            }
            if src == var {
                if let Some(dst_node) = assignment[dst.index()] {
                    let set = self.reach_back(i, dst_node).clone();
                    restrict(&mut domain, &set);
                }
            }
            if dst == var {
                if let Some(src_node) = assignment[src.index()] {
                    let set = self.reach_fwd(i, src_node).clone();
                    restrict(&mut domain, &set);
                }
            }
        }
        let mut cands: Vec<NodeId> = match domain {
            Some(d) => d.iter().map(|i| NodeId(i as u32)).collect(),
            None => self.g.nodes().collect(),
        };
        let loop_atoms: Vec<usize> = (0..self.atoms.len())
            .filter(|&i| self.atoms[i].src == var && self.atoms[i].dst == var)
            .collect();
        for i in loop_atoms {
            cands.retain(|&n| rpq::rpq_reach(self.g, &self.atoms[i].nfa, n).contains(n.index()));
        }
        cands
    }

    fn verify(&mut self, mu: &[NodeId]) -> bool {
        match self.sem {
            TrailSemantics::AtomTrail => (0..self.atoms.len()).all(|i| {
                let atom = &self.atoms[i];
                let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
                rpq::trail_exists(self.g, &atom.nfa, s, d)
            }),
            TrailSemantics::QueryTrail => {
                let mut used: FxHashSet<Edge> = FxHashSet::default();
                place_trails(self.g, &self.atoms, mu, 0, &mut used)
            }
        }
    }
}

/// Joint edge-disjoint placement for query-trail semantics.
fn place_trails(
    g: &GraphDb,
    atoms: &[TrailAtom],
    mu: &[NodeId],
    i: usize,
    used: &mut FxHashSet<Edge>,
) -> bool {
    if i == atoms.len() {
        return true;
    }
    let atom = &atoms[i];
    let (s, d) = (mu[atom.src.index()], mu[atom.dst.index()]);
    let mut placed = false;
    let blocked = used.clone();
    rpq::for_each_trail(g, &atom.nfa, s, d, &blocked, |edges| {
        for e in edges {
            used.insert(*e);
        }
        let ok = place_trails(g, atoms, mu, i + 1, used);
        for e in edges {
            used.remove(e);
        }
        if ok {
            placed = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    placed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval_contains, eval_tuples, Semantics};
    use crpq_graph::GraphBuilder;
    use crpq_query::parse_crpq;

    fn graph(edges: &[(&str, &str, &str)]) -> GraphDb {
        let mut b = GraphBuilder::new();
        for &(u, l, v) in edges {
            b.edge(u, l, v);
        }
        b.finish()
    }

    #[test]
    fn figure_of_eight_separates_trails_from_simple_paths() {
        // u -a-> m -b-> m2 -c-> m -d-> v: the abcd walk repeats node m but
        // no edge: a trail, not a simple path.
        let mut g = graph(&[
            ("u", "a", "m"),
            ("m", "b", "m2"),
            ("m2", "c", "m"),
            ("m", "d", "v"),
        ]);
        let q = parse_crpq("(x, y) <- x -[a b c d]-> y", g.alphabet_mut()).unwrap();
        let (u, v) = (g.node_by_name("u").unwrap(), g.node_by_name("v").unwrap());
        assert!(eval_contains_trail(
            &q,
            &g,
            &[u, v],
            TrailSemantics::AtomTrail
        ));
        assert!(eval_contains_trail(
            &q,
            &g,
            &[u, v],
            TrailSemantics::QueryTrail
        ));
        assert!(!eval_contains(&q, &g, &[u, v], Semantics::AtomInjective));
    }

    #[test]
    fn edge_disjointness_vs_sharing() {
        // Two atoms both needing the single a-edge: a-trail allows sharing,
        // q-trail does not.
        let mut g = graph(&[("u", "a", "v")]);
        let q = parse_crpq("x -[a]-> y, x -[a]-> z", g.alphabet_mut()).unwrap();
        assert!(eval_boolean_trail(&q, &g, TrailSemantics::AtomTrail));
        assert!(!eval_boolean_trail(&q, &g, TrailSemantics::QueryTrail));
        // With two parallel a-edges via an extra node, q-trail succeeds.
        let mut g2 = graph(&[("u", "a", "v"), ("u", "a", "w")]);
        let q2 = parse_crpq("x -[a]-> y, x -[a]-> z", g2.alphabet_mut()).unwrap();
        assert!(eval_boolean_trail(&q2, &g2, TrailSemantics::QueryTrail));
    }

    #[test]
    fn trail_semantics_do_not_require_injective_assignment() {
        // Q(x,y) = x -a-> y with tuple (u,u) on an a-loop: q-trail accepts
        // (no variable injectivity), q-inj rejects.
        let mut g = graph(&[("u", "a", "u")]);
        let q = parse_crpq("(x, y) <- x -[a]-> y", g.alphabet_mut()).unwrap();
        let u = g.node_by_name("u").unwrap();
        assert!(eval_contains_trail(
            &q,
            &g,
            &[u, u],
            TrailSemantics::QueryTrail
        ));
        assert!(!eval_contains(&q, &g, &[u, u], Semantics::QueryInjective));
        // And even a-inj rejects (simple path u→u must be empty):
        assert!(!eval_contains(&q, &g, &[u, u], Semantics::AtomInjective));
    }

    #[test]
    fn closed_trails_for_self_loop_atoms() {
        // x -[a a]-> x: closed trail of length 2 via u→v→u.
        let mut g = graph(&[("u", "a", "v"), ("v", "a", "u")]);
        let q = parse_crpq("x -[a a]-> x", g.alphabet_mut()).unwrap();
        for sem in TrailSemantics::ALL {
            assert!(eval_boolean_trail(&q, &g, sem), "under {sem}");
        }
        // A single self-loop cannot spell aa as a trail (edge repeats).
        let mut g2 = graph(&[("u", "a", "u")]);
        let q2 = parse_crpq("x -[a a]-> x", g2.alphabet_mut()).unwrap();
        assert!(!eval_boolean_trail(&q2, &g2, TrailSemantics::AtomTrail));
    }

    #[test]
    fn hierarchy_with_node_injective_semantics() {
        // q-trail ⊆ a-trail ⊆ st, a-inj ⊆ a-trail, q-inj ⊆ q-trail on the
        // paper's example instances and a random instance.
        for (edges, qtext) in [
            (
                vec![
                    ("u", "a", "v"),
                    ("v", "b", "w"),
                    ("w", "c", "v"),
                    ("v", "c", "u"),
                ],
                "(x, y) <- x -[(a b)*]-> y, y -[c*]-> x",
            ),
            (
                vec![
                    ("u", "a", "w"),
                    ("w", "b", "t"),
                    ("t", "a", "u"),
                    ("u", "b", "v"),
                    ("v", "c", "u"),
                ],
                "(x, y) <- x -[(a b)*]-> y, y -[c*]-> x",
            ),
        ] {
            let mut g = graph(&edges);
            let q = parse_crpq(qtext, g.alphabet_mut()).unwrap();
            let st = eval_tuples(&q, &g, Semantics::Standard);
            let a_inj = eval_tuples(&q, &g, Semantics::AtomInjective);
            let q_inj = eval_tuples(&q, &g, Semantics::QueryInjective);
            let a_trail = eval_tuples_trail(&q, &g, TrailSemantics::AtomTrail);
            let q_trail = eval_tuples_trail(&q, &g, TrailSemantics::QueryTrail);
            for t in &q_trail {
                assert!(a_trail.contains(t), "q-trail ⊆ a-trail");
            }
            for t in &a_trail {
                assert!(st.contains(t), "a-trail ⊆ st");
            }
            for t in &a_inj {
                assert!(a_trail.contains(t), "a-inj ⊆ a-trail");
            }
            // On these instances no q-inj witness duplicates a whole
            // path, so the q-inj ⊆ q-trail cross-link holds here (it is
            // not an inclusion in general — see the module docs).
            for t in &q_inj {
                assert!(q_trail.contains(t), "q-inj ⊆ q-trail on this instance");
            }
        }
    }

    #[test]
    fn example21_under_trail_semantics() {
        // On the Example 2.1 graph G, the cc-path and ab-path share node v
        // but no edge: (u,w) holds under q-trail although not under q-inj.
        let mut g = graph(&[
            ("u", "a", "v"),
            ("v", "b", "w"),
            ("w", "c", "v"),
            ("v", "c", "u"),
        ]);
        let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", g.alphabet_mut()).unwrap();
        let (u, w) = (g.node_by_name("u").unwrap(), g.node_by_name("w").unwrap());
        assert!(eval_contains_trail(
            &q,
            &g,
            &[u, w],
            TrailSemantics::QueryTrail
        ));
        assert!(!eval_contains(&q, &g, &[u, w], Semantics::QueryInjective));
    }
}
