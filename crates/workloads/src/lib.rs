//! # crpq-workloads
//!
//! Seeded, reproducible instance generators for the experiment suite
//! (`EXPERIMENTS.md`). Each experiment has a module:
//!
//! * [`paper_examples`] — the concrete objects of the paper: the Example 2.1
//!   query with Figure-2-style graphs `G`/`G′`, the Example 4.7 query
//!   quadruple, the §1 intro query (E2, E4);
//! * [`random`] — random CRPQs per query class and random graph databases
//!   (E3, E9);
//! * [`figure1`] — per-cell containment instance families scaling with a
//!   size parameter (E1);
//! * [`scaling`] — evaluation scaling families: data complexity (growing
//!   graphs) and combined complexity (growing queries) (E9);
//! * [`cyclic`] — cyclic-shape CRPQs (triangle, 4-cycle,
//!   diamond-with-chord) for the worst-case-optimal join executor.

pub mod cyclic;
pub mod figure1;
pub mod paper_examples;
pub mod random;
pub mod scaling;
pub mod wikidata;
