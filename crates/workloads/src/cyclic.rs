//! Cyclic-shape CRPQ workloads for the worst-case-optimal join.
//!
//! The variants of these queries close cycles in the atom–variable
//! incidence graph — exactly the shapes where a backtracking binary join
//! can materialise asymptotically more intermediate bindings than the
//! output (AGM bound: `O(|R|²)` vs `O(|R|^{3/2})` on the triangle) and
//! where the Generic-Join executor (`crpq_core::wcoj`, dispatched by
//! `JoinPlan::is_cyclic`) is provably better. Used by
//! `tests/wcoj_equivalence.rs` (differential correctness against the
//! enumeration oracle) and by `BENCH_eval`'s `cyclic_rows` (WCOJ-vs-binary
//! wall clock, with the CI-asserted "WCOJ no slower than binary join"
//! floor on the triangle).
//!
//! Each query keeps its atoms ε-free and single-label, so there is exactly
//! one ε-free variant, the atom relations are the label's edge sets, and
//! the measured gap is the executors' — not ε-variant bookkeeping or
//! materialisation.

use crpq_graph::{generators, GraphDb};
use crpq_query::{parse_crpq, Crpq};
use crpq_util::Interner;

/// The triangle CRPQ
/// `Q(x, y, z) = x -[a]-> y ∧ y -[b]-> z ∧ z -[c]-> x` — the canonical
/// cyclic shape (3 variables, 3 atoms, one cycle).
pub fn triangle_query(alphabet: &mut Interner) -> Crpq {
    // invariant: fixed workload query text parses
    parse_crpq("(x, y, z) <- x -[a]-> y, y -[b]-> z, z -[c]-> x", alphabet).unwrap()
}

/// The 4-cycle CRPQ
/// `Q(x, y, z, w) = x -[a]-> y ∧ y -[b]-> z ∧ z -[c]-> w ∧ w -[d]-> x`.
pub fn four_cycle_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq(
        "(x, y, z, w) <- x -[a]-> y, y -[b]-> z, z -[c]-> w, w -[d]-> x",
        alphabet,
    )
    .unwrap() // invariant: fixed workload query text parses
}

/// The diamond-with-chord CRPQ: the 4-cycle of [`four_cycle_query`] plus
/// the `x -[e]-> z` diagonal — two triangles sharing the chord, the
/// smallest shape where *every* pair of adjacent variables is constrained
/// by at least two atoms once the cycle closes.
pub fn diamond_chord_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq(
        "(x, y, z, w) <- x -[a]-> y, y -[b]-> z, z -[c]-> w, w -[d]-> x, x -[e]-> z",
        alphabet,
    )
    .unwrap() // invariant: fixed workload query text parses
}

/// A starred triangle whose atoms are all ε-bearing
/// (`x -[(a b)*]-> y ∧ y -[c*]-> z ∧ z -[(b c)*]-> x`): 2³ = 8 ε-free
/// variants whose non-collapsed ones stay cyclic — exercises the
/// per-variant dispatch (collapsed variants lose variables and may become
/// acyclic) together with the relation catalog.
pub fn starred_triangle_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq(
        "(x, y) <- x -[(a b)*]-> y, y -[c*]-> z, z -[(b c)*]-> x",
        alphabet,
    )
    .unwrap() // invariant: fixed workload query text parses
}

/// The number of edge labels the cyclic workload graphs carry — one per
/// atom of the largest query ([`diamond_chord_query`]).
pub const CYCLIC_LABELS: [&str; 5] = ["a", "b", "c", "d", "e"];

/// Random graph for the cyclic workloads: `n` nodes, `edges_per_label · n`
/// edges uniformly over [`CYCLIC_LABELS`]. At the default
/// [`cyclic_graph`] density (4 edges per label per node) a triangle query
/// has ~`(4n)³/n³ · …` expected matches — small but non-empty at bench
/// sizes, while the intermediate `x -[a]-> y` binding set is `Θ(n)`.
pub fn cyclic_graph_with_density(n: usize, edges_per_label: usize, seed: u64) -> GraphDb {
    generators::random_graph(
        n,
        edges_per_label * CYCLIC_LABELS.len() * n,
        &CYCLIC_LABELS,
        seed,
    )
}

/// [`cyclic_graph_with_density`] at the default density (4 edges per label
/// per node).
pub fn cyclic_graph(n: usize, seed: u64) -> GraphDb {
    cyclic_graph_with_density(n, 4, seed)
}

/// A graph on which the triangle query is **empty**: `a`/`b`/`c` edges
/// only ever point "forward" across three strata, so no `c` edge can close
/// a triangle back into the first stratum. Differential tests use it to
/// pin the empty-output path of the WCOJ executor.
pub fn triangle_free_graph(n: usize) -> GraphDb {
    let mut b = crpq_graph::GraphBuilder::new();
    for i in 0..n {
        let j = (i + 1) % n;
        b.edge(&format!("s0_{i}"), "a", &format!("s1_{j}"));
        b.edge(&format!("s1_{i}"), "b", &format!("s2_{j}"));
        // `c` edges stay inside stratum 2 instead of returning to
        // stratum 0: every z -[c]-> x lands where no `a` edge starts.
        b.edge(&format!("s2_{i}"), "c", &format!("s2_{j}"));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_core::{eval_tuples_with, EvalStrategy, Semantics};

    #[test]
    fn triangle_workload_has_matches_and_agrees() {
        let mut g = cyclic_graph(30, 3);
        let q = triangle_query(g.alphabet_mut());
        let join = eval_tuples_with(&q, &g, Semantics::Standard, EvalStrategy::Join);
        let oracle = eval_tuples_with(&q, &g, Semantics::Standard, EvalStrategy::Enumerate);
        assert_eq!(join, oracle);
    }

    #[test]
    fn triangle_free_graph_is_triangle_free() {
        let mut g = triangle_free_graph(8);
        let q = triangle_query(g.alphabet_mut());
        for sem in Semantics::ALL {
            for strategy in [
                EvalStrategy::Join,
                EvalStrategy::BinaryJoin,
                EvalStrategy::Wcoj,
                EvalStrategy::Enumerate,
            ] {
                assert!(
                    eval_tuples_with(&q, &g, sem, strategy).is_empty(),
                    "{sem} {strategy:?}"
                );
            }
        }
    }

    #[test]
    fn cyclic_queries_parse_to_expected_shapes() {
        let mut it = Interner::new();
        assert_eq!(triangle_query(&mut it).atoms.len(), 3);
        assert_eq!(four_cycle_query(&mut it).atoms.len(), 4);
        let diamond = diamond_chord_query(&mut it);
        assert_eq!(diamond.atoms.len(), 5);
        assert_eq!(diamond.num_vars, 4);
        assert_eq!(
            starred_triangle_query(&mut it).epsilon_free_union().len(),
            8
        );
    }
}
