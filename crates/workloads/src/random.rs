//! Random query and instance generation, seeded and reproducible.

use crpq_automata::Regex;
use crpq_graph::{generators, GraphDb};
use crpq_query::{Crpq, CrpqAtom, QueryClass, Var};
use crpq_util::{Interner, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for random CRPQ generation.
#[derive(Clone, Copy, Debug)]
pub struct RandomQueryParams {
    /// Target query class.
    pub class: QueryClass,
    /// Number of variables.
    pub num_vars: usize,
    /// Number of atoms.
    pub num_atoms: usize,
    /// Alphabet size.
    pub alphabet: usize,
    /// Free-variable tuple arity.
    pub arity: usize,
    /// Maximum word length inside finite languages / concatenations.
    pub max_word: usize,
}

impl Default for RandomQueryParams {
    fn default() -> Self {
        Self {
            class: QueryClass::CrpqFin,
            num_vars: 3,
            num_atoms: 3,
            alphabet: 3,
            arity: 0,
            max_word: 2,
        }
    }
}

/// Generates a random CRPQ of the requested class. Symbols `s0…s{k-1}` are
/// interned into `alphabet`.
pub fn random_query(params: RandomQueryParams, alphabet: &mut Interner, seed: u64) -> Crpq {
    let mut rng = StdRng::seed_from_u64(seed);
    let syms: Vec<Symbol> = (0..params.alphabet)
        .map(|i| alphabet.intern(&format!("s{i}")))
        .collect();
    let mut atoms = Vec::with_capacity(params.num_atoms);
    for _ in 0..params.num_atoms {
        let src = Var(rng.gen_range(0..params.num_vars) as u32);
        let dst = Var(rng.gen_range(0..params.num_vars) as u32);
        let regex = random_regex(&params, &syms, &mut rng);
        atoms.push(CrpqAtom { src, dst, regex });
    }
    let free = (0..params.arity)
        .map(|_| Var(rng.gen_range(0..params.num_vars) as u32))
        .collect();
    Crpq {
        num_vars: params.num_vars,
        atoms,
        free,
    }
}

fn random_regex(params: &RandomQueryParams, syms: &[Symbol], rng: &mut StdRng) -> Regex {
    let word = |rng: &mut StdRng| {
        let len = rng.gen_range(1..=params.max_word.max(1));
        Regex::word(
            &(0..len)
                .map(|_| syms[rng.gen_range(0..syms.len())])
                .collect::<Vec<_>>(),
        )
    };
    match params.class {
        QueryClass::Cq => Regex::lit(syms[rng.gen_range(0..syms.len())]),
        QueryClass::CrpqFin => {
            let alts = rng.gen_range(1..=2);
            Regex::alt((0..alts).map(|_| word(rng)).collect())
        }
        QueryClass::Crpq => {
            // A starred block optionally preceded/followed by words, never ε.
            let core = Regex::star(word(rng));
            let prefix = word(rng);
            Regex::concat(vec![prefix, core])
        }
    }
}

/// A random labelled graph whose alphabet lines up with `alphabet`'s
/// `s0…s{k-1}` symbols.
pub fn random_graph_for(
    alphabet: &mut Interner,
    k: usize,
    nodes: usize,
    edges: usize,
    seed: u64,
) -> GraphDb {
    let labels: Vec<String> = (0..k).map(|i| format!("s{i}")).collect();
    let refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    for l in &labels {
        alphabet.intern(l);
    }
    // generators::random_graph interns labels in first-use order s0..s{k-1},
    // matching `alphabet` as long as callers intern the same way.
    generators::random_graph(nodes, edges, &refs, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_core::{eval_tuples, Semantics};

    #[test]
    fn random_query_class_respected() {
        let mut it = Interner::new();
        for (seed, class) in [
            (1, QueryClass::Cq),
            (2, QueryClass::CrpqFin),
            (3, QueryClass::Crpq),
        ] {
            let q = random_query(
                RandomQueryParams {
                    class,
                    ..Default::default()
                },
                &mut it,
                seed,
            );
            // Classification is monotone: a CQ also classifies as CQ, etc.
            assert!(
                q.classify() <= class,
                "wanted {class:?}, got {:?}",
                q.classify()
            );
            assert_eq!(q.atoms.len(), 3);
        }
    }

    #[test]
    fn deterministic_generation() {
        let mut it1 = Interner::new();
        let mut it2 = Interner::new();
        let q1 = random_query(Default::default(), &mut it1, 7);
        let q2 = random_query(Default::default(), &mut it2, 7);
        assert_eq!(q1, q2);
    }

    #[test]
    fn hierarchy_property_on_random_instances() {
        // Remark 2.1 on random query/graph pairs — the core of experiment E3.
        for seed in 0..4 {
            let mut it = Interner::new();
            let q = random_query(
                RandomQueryParams {
                    arity: 1,
                    ..Default::default()
                },
                &mut it,
                seed,
            );
            let g = random_graph_for(&mut it, 3, 6, 14, seed);
            let st = eval_tuples(&q, &g, Semantics::Standard);
            let ai = eval_tuples(&q, &g, Semantics::AtomInjective);
            let qi = eval_tuples(&q, &g, Semantics::QueryInjective);
            for t in &qi {
                assert!(ai.contains(t), "q-inj ⊆ a-inj failed on seed {seed}");
            }
            for t in &ai {
                assert!(st.contains(t), "a-inj ⊆ st failed on seed {seed}");
            }
        }
    }
}
