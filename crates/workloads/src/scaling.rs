//! Scaling families for experiment E9 (evaluation complexity, Prop 3.1/3.2).
//!
//! * **data complexity**: a fixed small query evaluated over growing random
//!   graphs — standard semantics stays polynomial (product reachability),
//!   the injective semantics hit the NP wall (simple-path search);
//! * **combined complexity**: a growing chain query over a fixed graph.

use crpq_automata::Regex;
use crpq_graph::{generators, GraphDb};
use crpq_query::{parse_crpq, Crpq, CrpqAtom, Var};
use crpq_util::Interner;

/// A fixed 2-atom query exercising all three semantics
/// (`Q(x,y) = x -(ab)*-> y ∧ y -c*-> x`).
pub fn data_complexity_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", alphabet).unwrap() // invariant: fixed workload query text parses
}

/// Growing graph for the data-complexity sweep: `n` nodes, `3n` edges over
/// `{a, b, c}`.
pub fn data_complexity_graph(n: usize, seed: u64) -> GraphDb {
    generators::random_graph(n, 3 * n, &["a", "b", "c"], seed)
}

/// A 3-atom triangle query whose atoms are **all** ε-bearing
/// (`Q(x,y) = x -(ab)*-> y ∧ y -c*-> z ∧ z -(bc)*-> x`): ε-elimination
/// yields 2³ = 8 ε-free variants over only 3 distinct atom languages, each
/// shared by 4 variants. The multi-variant stress case for the relation
/// catalog — a per-variant engine materialises 12 relations where the
/// catalog materialises 3 (hit rate 3/4).
pub fn multi_variant_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq(
        "(x, y) <- x -[(a b)*]-> y, y -[c*]-> z, z -[(b c)*]-> x",
        alphabet,
    )
    .unwrap() // invariant: fixed workload query text parses
}

/// Growing chain query for the combined-complexity sweep: `k` atoms
/// `xᵢ -[a+b]-> xᵢ₊₁` (Boolean).
pub fn combined_complexity_query(k: usize, alphabet: &mut Interner) -> Crpq {
    let a = alphabet.intern("a");
    let b = alphabet.intern("b");
    let atoms = (0..k)
        .map(|i| CrpqAtom {
            src: Var(i as u32),
            dst: Var(i as u32 + 1),
            regex: Regex::alt(vec![Regex::lit(a), Regex::lit(b)]),
        })
        .collect();
    Crpq::boolean(atoms)
}

/// Fixed graph for the combined-complexity sweep.
pub fn combined_complexity_graph(seed: u64) -> GraphDb {
    generators::random_graph(12, 40, &["a", "b"], seed)
}

/// Number of distinct edge labels in the label-rich (Wikidata-style)
/// scaling family — the knob that used to blow up the dense
/// `label × node` index layout.
pub const LABEL_RICH_LABELS: usize = 1000;

/// Zipf exponent of the label-rich family's label-frequency distribution
/// (≈ the skew observed on practical RPQ predicate workloads: a handful of
/// very frequent predicates, a long rare tail).
pub const LABEL_RICH_ZIPF_EXPONENT: f64 = 1.0;

/// The **label-rich scaling graph**: `n` nodes, `4n` edges over
/// [`LABEL_RICH_LABELS`] labels with Zipf-distributed frequencies
/// ([`crpq_graph::generators::zipf_label_graph`]). The scale benchmarks run
/// it at `n = 10⁵`, where a per-direction dense `label × node` offset table
/// would cost `4 · 10⁸` bytes against the sparse per-label CSR's few MB.
pub fn label_rich_graph(n: usize, seed: u64) -> GraphDb {
    generators::zipf_label_graph(n, 4 * n, LABEL_RICH_LABELS, LABEL_RICH_ZIPF_EXPONENT, seed)
}

/// The query evaluated over [`label_rich_graph`]: a two-atom chain over
/// the five most frequent labels —
/// `Q(x, y) = x -[l0 (l1+l2)*]-> y ∧ y -[l2 (l3+l4)*]-> z` (z
/// existential). The starred sub-expressions keep the product sweeps
/// non-trivial, the `l0`/`l2` anchors keep domains selective (a fraction
/// of `V`, not all of it), and the chain shape leaves a real join to run —
/// exactly the regime the adaptive (sparse) semi-join domains are built
/// for.
pub fn label_rich_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq(
        "(x, y) <- x -[l0 (l1+l2)*]-> y, y -[l2 (l3+l4)*]-> z",
        alphabet,
    )
    .unwrap() // invariant: fixed workload query text parses
}

/// Number of (uniform) edge labels in the million-node scaling family.
/// Small enough that per-label neighbour slices stay non-trivial, large
/// enough that single-label subgraphs (mean degree `4/16 = 0.25`) stay
/// subcritical — so `(lᵢ+lⱼ)*` closures are bushels of small components,
/// not one giant SCC, and relation sizes track the touched sets.
pub const MILLION_LABELS: usize = 16;

/// The **million-node scaling graph**: `n` *anonymous* nodes (pure dense
/// ids, zero name bytes — [`crpq_graph::generators::anonymous_random_graph`])
/// and `4n` uniform edges over [`MILLION_LABELS`] labels. The scale
/// benchmarks run it at `n = 10⁶` / `4·10⁶` edges, where the pre-arena
/// layout (per-node `String` + name index, dense per-sweep stamp arrays,
/// `O(|V|)` reverse-assembly passes per relation) extrapolated to ≥ 1.5 GB
/// — the build+eval pipeline now has to hold index + names under ~200 MB.
pub fn million_graph(n: usize, seed: u64) -> GraphDb {
    crpq_graph::generators::anonymous_random_graph(n, 4 * n, MILLION_LABELS, seed)
}

/// The query evaluated over [`million_graph`]: the same anchored two-atom
/// chain shape as [`label_rich_query`] —
/// `Q(x, y) = x -[l0 (l1+l2)*]-> y ∧ y -[l2 (l3+l4)*]-> z` (z
/// existential). Both atoms are `l`-anchored (non-nullable, so no ε-variant
/// blowup), and the starred tails run over subcritical single-label
/// subgraphs: every product sweep touches a small cone of the 10⁶·|Q|
/// product, which is exactly the regime the sparse sweep scratch and the
/// touched-set relation assembly are built for.
pub fn million_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq(
        "(x, y) <- x -[l0 (l1+l2)*]-> y, y -[l2 (l3+l4)*]-> z",
        alphabet,
    )
    .unwrap() // invariant: fixed workload query text parses
}

/// Zipf exponent of the work-stealing bench family — deliberately more
/// skewed than [`LABEL_RICH_ZIPF_EXPONENT`]: at 1.4 the head labels carry
/// most of the edges, so a handful of top-level join candidates own most
/// of the search space. That is the starvation case static partitioning
/// loses on (one worker crawls the huge subtree while the rest idle) and
/// the work-stealing scheduler exists for.
pub const STEAL_ZIPF_EXPONENT: f64 = 1.4;

/// The **work-stealing bench graph**: the label-rich family skewed to
/// [`STEAL_ZIPF_EXPONENT`]. Benchmarked under [`steal_query`] with the
/// work-stealing vs. static parallel schedulers in `BENCH_scale.json`'s
/// `steal_rows`.
pub fn steal_skew_graph(n: usize, seed: u64) -> GraphDb {
    generators::zipf_label_graph(n, 4 * n, LABEL_RICH_LABELS, STEAL_ZIPF_EXPONENT, seed)
}

/// The query evaluated over [`steal_skew_graph`]: the same anchored
/// two-atom chain as [`label_rich_query`] — under the skewed label
/// distribution its `l0`/`l2` anchors produce few but heavy top-level
/// candidates.
pub fn steal_query(alphabet: &mut Interner) -> Crpq {
    label_rich_query(alphabet)
}

/// A worst-case family for simple-path search: a ladder of diamonds where
/// the number of simple paths is exponential in `n`.
pub fn diamond_ladder(n: usize) -> GraphDb {
    let mut b = crpq_graph::GraphBuilder::new();
    for i in 0..n {
        let (s, t) = (format!("s{i}"), format!("s{}", i + 1));
        b.edge(&s, "a", &format!("up{i}"));
        b.edge(&format!("up{i}"), "a", &t);
        b.edge(&s, "a", &format!("dn{i}"));
        b.edge(&format!("dn{i}"), "a", &t);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_core::{eval_boolean, eval_contains, Semantics};

    #[test]
    fn data_family_evaluates() {
        let mut it = Interner::new();
        let q = data_complexity_query(&mut it);
        let g = data_complexity_graph(8, 5);
        let u = crpq_graph::NodeId(0);
        for sem in Semantics::ALL {
            let _ = eval_contains(&q, &g, &[u, u], sem); // diagonal always true via ε
        }
    }

    #[test]
    fn combined_family_evaluates() {
        let mut it = Interner::new();
        let q = combined_complexity_query(4, &mut it);
        let g = combined_complexity_graph(1);
        for sem in Semantics::ALL {
            let _ = eval_boolean(&q, &g, sem);
        }
    }

    #[test]
    fn label_rich_family_evaluates_consistently() {
        // Scaled-down instance of the |V| = 10⁵ family: the join engine
        // (adaptive domains, sparse-offset CSR) must agree with the
        // enumeration oracle under all three semantics.
        let mut g = crpq_graph::generators::zipf_label_graph(40, 160, 25, 1.0, 7);
        let q = label_rich_query(g.alphabet_mut());
        for sem in Semantics::ALL {
            let join = crpq_core::eval_tuples_with(&q, &g, sem, crpq_core::EvalStrategy::Join);
            let oracle =
                crpq_core::eval_tuples_with(&q, &g, sem, crpq_core::EvalStrategy::Enumerate);
            assert_eq!(join, oracle, "label-rich join vs oracle under {sem}");
        }
    }

    #[test]
    fn million_family_scales_down_consistently() {
        // Scaled-down instance of the |V| = 10⁶ family: anonymous nodes,
        // uniform labels, same query shape. The join engine (sparse sweep
        // scratch + touched-set relation assembly) must agree with the
        // enumeration oracle under all three semantics.
        let mut g = crpq_graph::generators::anonymous_random_graph(40, 160, MILLION_LABELS, 3);
        assert!(!g.is_named());
        assert_eq!(g.name_bytes(), 0);
        let q = million_query(g.alphabet_mut());
        for sem in Semantics::ALL {
            let join = crpq_core::eval_tuples_with(&q, &g, sem, crpq_core::EvalStrategy::Join);
            let oracle =
                crpq_core::eval_tuples_with(&q, &g, sem, crpq_core::EvalStrategy::Enumerate);
            assert_eq!(join, oracle, "million-family join vs oracle under {sem}");
        }
    }

    #[test]
    fn steal_family_schedulers_agree() {
        // Scaled-down instance of the work-stealing bench family: the
        // work-stealing and static parallel schedulers must agree with the
        // sequential engine under all three semantics.
        let mut g = crpq_graph::generators::zipf_label_graph(40, 160, 25, STEAL_ZIPF_EXPONENT, 13);
        let q = steal_query(g.alphabet_mut());
        for sem in Semantics::ALL {
            let seq = crpq_core::eval_tuples(&q, &g, sem);
            let ws = crpq_core::eval_tuples_parallel(&q, &g, sem, 4);
            let st = crpq_core::eval_tuples_parallel_static(&q, &g, sem, 4);
            assert_eq!(seq, ws, "work-stealing vs sequential under {sem}");
            assert_eq!(seq, st, "static vs sequential under {sem}");
        }
    }

    #[test]
    fn diamond_ladder_shape() {
        let g = diamond_ladder(3);
        assert_eq!(g.num_nodes(), 3 * 2 + 4); // 2 per rung + 4 spine
        assert_eq!(g.num_edges(), 12);
        // a^{2n} path exists from s0 to sn:
        let mut g2 = g.clone();
        let regex = crpq_automata::parse_regex("a a a a a a", g2.alphabet_mut()).unwrap();
        let nfa = crpq_automata::Nfa::from_regex(&regex);
        let s0 = g.node_by_name("s0").unwrap();
        let s3 = g.node_by_name("s3").unwrap();
        assert!(crpq_graph::rpq::simple_path_exists(
            &g2,
            &nfa,
            s0,
            s3,
            &g2.node_set()
        ));
    }
}
