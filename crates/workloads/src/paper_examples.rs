//! The paper's concrete examples as reusable objects.
//!
//! Figure 2's graphs are reconstructed to witness exactly the claims of
//! Example 2.1 (the arXiv figure is vector art; the edge lists below are
//! the minimal graphs satisfying every stated membership fact — see
//! EXPERIMENTS.md E2).

use crpq_graph::{GraphBuilder, GraphDb};
use crpq_query::{parse_crpq, Crpq};
use crpq_util::Interner;

/// The Example 2.1 query `Q(x, y) = x -(ab)*-> y ∧ y -c*-> x`, parsed
/// against `alphabet`.
pub fn example21_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", alphabet).unwrap() // invariant: fixed workload query text parses
}

/// Figure-2 style `G`: separates a-inj from q-inj and has `Q(G)_st =
/// Q(G)_a-inj`. Edges: `u -a-> v -b-> w`, `w -c-> v -c-> u`.
///
/// `(u, w) ∈ Q(G)_a-inj \ Q(G)_q-inj`: the `ab`-path and the `cc`-path both
/// run through `v`.
pub fn example21_g(alphabet: &Interner) -> GraphDb {
    let mut b = GraphBuilder::with_alphabet(alphabet.clone());
    b.edge("u", "a", "v");
    b.edge("v", "b", "w");
    b.edge("w", "c", "v");
    b.edge("v", "c", "u");
    b.finish()
}

/// Figure-2 style `G′`: separates st from a-inj.
/// Edges: `u -a-> w -b-> t -a-> u -b-> v -c-> u`.
///
/// `(u, v) ∈ Q(G′)_st \ Q(G′)_a-inj`: the only `(ab)^k` walks from `u` to
/// `v` revisit `u` (e.g. `u a w b t a u b v`).
pub fn example21_gprime(alphabet: &Interner) -> GraphDb {
    let mut b = GraphBuilder::with_alphabet(alphabet.clone());
    b.edge("u", "a", "w");
    b.edge("w", "b", "t");
    b.edge("t", "a", "u");
    b.edge("u", "b", "v");
    b.edge("v", "c", "u");
    b.finish()
}

/// A single graph separating **all three** semantics for the Example 2.1
/// query (the union of the two gadgets above on disjoint nodes).
pub fn example21_full_separation(alphabet: &Interner) -> GraphDb {
    let mut b = GraphBuilder::with_alphabet(alphabet.clone());
    b.edge("u", "a", "v");
    b.edge("v", "b", "w");
    b.edge("w", "c", "v");
    b.edge("v", "c", "u");
    b.edge("u2", "a", "w2");
    b.edge("w2", "b", "t2");
    b.edge("t2", "a", "u2");
    b.edge("u2", "b", "v2");
    b.edge("v2", "c", "u2");
    b.finish()
}

/// Example 4.7's four queries `(Q₁, Q₂, Q₁′, Q₂′)`:
/// `Q₁ = x -a-> y ∧ y -b-> z`, `Q₂ = x -[ab]-> y`,
/// `Q₁′ = x -a-> y ∧ x -b-> y`, `Q₂′ = x -a-> y ∧ x′ -b-> y′`.
pub fn example47_queries(alphabet: &mut Interner) -> (Crpq, Crpq, Crpq, Crpq) {
    let q1 = parse_crpq("x -[a]-> y, y -[b]-> z", alphabet).unwrap(); // invariant: fixed workload query text parses
    let q2 = parse_crpq("x -[a b]-> y", alphabet).unwrap(); // invariant: fixed workload query text parses
    let q1p = parse_crpq("x -[a]-> y, x -[b]-> y", alphabet).unwrap(); // invariant: fixed workload query text parses
    let q2p = parse_crpq("x -[a]-> y, x' -[b]-> y'", alphabet).unwrap(); // invariant: fixed workload query text parses
    (q1, q2, q1p, q2p)
}

/// The §1 introduction query
/// `Q = ∃x,y,z (x -(a+b)⁺-> y ∧ x -(b+c)⁺-> z)`.
pub fn intro_query(alphabet: &mut Interner) -> Crpq {
    parse_crpq("x -[(a+b)(a+b)*]-> y, x -[(b+c)(b+c)*]-> z", alphabet).unwrap() // invariant: fixed workload query text parses
}

/// The intro's motivating database: a directed path of `n` `b`-edges
/// (`Q` holds under st/a-inj by overlapping paths, fails under q-inj).
pub fn intro_b_path(alphabet: &Interner, n: usize) -> GraphDb {
    let mut b = GraphBuilder::with_alphabet(alphabet.clone());
    for i in 0..n {
        b.edge(&format!("n{i}"), "b", &format!("n{}", i + 1));
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_core::{eval_contains, eval_tuples, Semantics};

    #[test]
    fn example21_claims_hold() {
        let mut it = Interner::new();
        let q = example21_query(&mut it);
        let g = example21_g(&it);
        let (u, w) = (g.node_by_name("u").unwrap(), g.node_by_name("w").unwrap());
        assert!(eval_contains(&q, &g, &[u, w], Semantics::AtomInjective));
        assert!(!eval_contains(&q, &g, &[u, w], Semantics::QueryInjective));
        assert_eq!(
            eval_tuples(&q, &g, Semantics::Standard),
            eval_tuples(&q, &g, Semantics::AtomInjective),
            "Q(G)_st = Q(G)_a-inj"
        );

        let gp = example21_gprime(&it);
        let (u, v) = (gp.node_by_name("u").unwrap(), gp.node_by_name("v").unwrap());
        assert!(eval_contains(&q, &gp, &[u, v], Semantics::Standard));
        assert!(!eval_contains(&q, &gp, &[u, v], Semantics::AtomInjective));
    }

    #[test]
    fn full_separation_graph_separates() {
        let mut it = Interner::new();
        let q = example21_query(&mut it);
        let g = example21_full_separation(&it);
        let st = eval_tuples(&q, &g, Semantics::Standard).len();
        let ai = eval_tuples(&q, &g, Semantics::AtomInjective).len();
        let qi = eval_tuples(&q, &g, Semantics::QueryInjective).len();
        assert!(qi < ai && ai < st, "strict hierarchy: {qi} < {ai} < {st}");
    }

    #[test]
    fn intro_example_behaviour() {
        let mut it = Interner::new();
        let q = intro_query(&mut it);
        let g = intro_b_path(&it, 2);
        assert!(crpq_core::eval_boolean(&q, &g, Semantics::Standard));
        assert!(crpq_core::eval_boolean(&q, &g, Semantics::AtomInjective));
        assert!(!crpq_core::eval_boolean(&q, &g, Semantics::QueryInjective));
    }
}
