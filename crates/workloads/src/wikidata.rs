//! Wikidata-style query workloads.
//!
//! The paper motivates CRPQs by their use on Wikidata ("RPQs are popular
//! for querying Wikidata", §1, citing the query-log studies [7, 8]). Those
//! studies report that real property paths are overwhelmingly *simple
//! shapes*: single atoms, transitive closures of one property (`P*`, `P⁺`),
//! closures over small unions (`(P1+P2)⁺`), and short chains ending in a
//! closure (`P1/P2*`). This module generates queries following that shape
//! distribution over a Wikidata-flavoured schema graph, for the E3/E9
//! benches and the examples.

use crpq_graph::{GraphBuilder, GraphDb};
use crpq_query::{parse_crpq, Crpq};
use crpq_util::Interner;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The property vocabulary of the synthetic knowledge graph.
pub const PROPERTIES: [&str; 5] = ["instanceOf", "subclassOf", "partOf", "locatedIn", "follows"];

/// The query-log shape classes of [7, 8], with rough log frequencies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LogShape {
    /// `x -[P]-> y` — a plain property edge.
    SingleProperty,
    /// `x -[P P*]-> y` — transitive closure of one property.
    TransitiveClosure,
    /// `x -[(P1+P2)(P1+P2)*]-> y` — closure of a small union.
    UnionClosure,
    /// `x -[P1]-> z ∧ z -[P2 P2*]-> y` — a chain into a closure.
    ChainIntoClosure,
}

impl LogShape {
    /// Samples a shape with the (approximate) log distribution: single
    /// properties and one-property closures dominate.
    pub fn sample(rng: &mut StdRng) -> LogShape {
        match rng.gen_range(0..100) {
            0..=44 => LogShape::SingleProperty,
            45..=79 => LogShape::TransitiveClosure,
            80..=91 => LogShape::UnionClosure,
            _ => LogShape::ChainIntoClosure,
        }
    }
}

/// Generates a query of the given shape over the property vocabulary.
pub fn query_of_shape(shape: LogShape, alphabet: &mut Interner, rng: &mut StdRng) -> Crpq {
    let p = |rng: &mut StdRng| PROPERTIES[rng.gen_range(0..PROPERTIES.len())];
    let text = match shape {
        LogShape::SingleProperty => format!("(x, y) <- x -[{}]-> y", p(rng)),
        LogShape::TransitiveClosure => {
            let prop = p(rng);
            format!("(x, y) <- x -[{prop} {prop}*]-> y")
        }
        LogShape::UnionClosure => {
            let (p1, mut p2) = (p(rng), p(rng));
            while p2 == p1 {
                p2 = p(rng);
            }
            format!("(x, y) <- x -[({p1}+{p2})({p1}+{p2})*]-> y")
        }
        LogShape::ChainIntoClosure => {
            let (p1, p2) = (p(rng), p(rng));
            format!("(x, y) <- x -[{p1}]-> z, z -[{p2} {p2}*]-> y")
        }
    };
    parse_crpq(&text, alphabet).expect("generated query parses") // invariant: fixed workload query text parses
}

/// A query-log sample of `n` queries (seeded).
pub fn query_log(n: usize, alphabet: &mut Interner, seed: u64) -> Vec<(LogShape, Crpq)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let shape = LogShape::sample(&mut rng);
            (shape, query_of_shape(shape, alphabet, &mut rng))
        })
        .collect()
}

/// A Wikidata-flavoured knowledge graph: a class taxonomy (`subclassOf`
/// tree), entities attached via `instanceOf`, geographic containment
/// chains (`locatedIn`/`partOf`), and a `follows` succession line.
pub fn knowledge_graph(entities: usize, seed: u64) -> GraphDb {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    // taxonomy: a small binary tree of classes
    let classes = 7;
    for c in 1..classes {
        b.edge(
            &format!("class{c}"),
            "subclassOf",
            &format!("class{}", (c - 1) / 2),
        );
    }
    // places: a containment chain
    let places = 5;
    for pl in 1..places {
        b.edge(
            &format!("place{pl}"),
            "locatedIn",
            &format!("place{}", pl - 1),
        );
        b.edge(&format!("place{pl}"), "partOf", &format!("place{}", pl - 1));
    }
    // entities
    for e in 0..entities {
        let class = rng.gen_range(0..classes);
        b.edge(&format!("ent{e}"), "instanceOf", &format!("class{class}"));
        let place = rng.gen_range(0..places);
        b.edge(&format!("ent{e}"), "locatedIn", &format!("place{place}"));
        if e > 0 && rng.gen_bool(0.5) {
            b.edge(&format!("ent{e}"), "follows", &format!("ent{}", e - 1));
        }
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_core::{check_hierarchy, eval_tuples, Semantics};

    #[test]
    fn shapes_parse_and_classify() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sigma = Interner::new();
        use crpq_query::QueryClass;
        let q = query_of_shape(LogShape::SingleProperty, &mut sigma, &mut rng);
        assert_eq!(q.classify(), QueryClass::Cq);
        let q = query_of_shape(LogShape::TransitiveClosure, &mut sigma, &mut rng);
        assert_eq!(q.classify(), QueryClass::Crpq);
        let q = query_of_shape(LogShape::ChainIntoClosure, &mut sigma, &mut rng);
        assert_eq!(q.atoms.len(), 2);
    }

    #[test]
    fn log_distribution_is_log_like() {
        let mut sigma = Interner::new();
        let log = query_log(200, &mut sigma, 3);
        let singles = log
            .iter()
            .filter(|(s, _)| *s == LogShape::SingleProperty)
            .count();
        let closures = log
            .iter()
            .filter(|(s, _)| *s == LogShape::TransitiveClosure)
            .count();
        assert!(singles > 60, "singles dominate: {singles}");
        assert!(closures > 40, "closures frequent: {closures}");
    }

    #[test]
    fn knowledge_graph_answers_log_queries() {
        let g = knowledge_graph(20, 5);
        assert!(g.num_nodes() > 25);
        let mut g = g;
        let q = parse_crpq(
            "(x, y) <- x -[instanceOf]-> z, z -[subclassOf subclassOf*]-> y",
            g.alphabet_mut(),
        )
        .unwrap();
        // Every entity transitively reaches the root class (class0).
        let tuples = eval_tuples(&q, &g, Semantics::Standard);
        let root = g.node_by_name("class0").unwrap();
        let to_root = tuples.iter().filter(|t| t[1] == root).count();
        assert!(to_root > 0, "taxonomy closure reaches the root");
        // Hierarchy holds on the knowledge graph too.
        assert!(check_hierarchy(&q, &g).holds());
    }

    #[test]
    fn taxonomy_closures_equal_across_semantics() {
        // The subclassOf taxonomy is a tree: simple paths and arbitrary
        // paths coincide, so all three semantics agree on closure queries.
        let mut g = knowledge_graph(12, 9);
        let q = parse_crpq(
            "(x, y) <- x -[subclassOf subclassOf*]-> y",
            g.alphabet_mut(),
        )
        .unwrap();
        let st = eval_tuples(&q, &g, Semantics::Standard);
        let ai = eval_tuples(&q, &g, Semantics::AtomInjective);
        let qi = eval_tuples(&q, &g, Semantics::QueryInjective);
        assert_eq!(st, ai);
        assert_eq!(st, qi);
    }
}
