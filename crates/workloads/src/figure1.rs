//! Instance families for experiment E1: one family per class-pair column of
//! **Figure 1**, scalable by a size parameter, with known expected verdicts.
//!
//! The families are designed so that the *contained* cases force the
//! engines through their full search space (worst case for the ∀-side) and
//! the *not-contained* cases carry a planted counter-example.

use crpq_automata::Regex;
use crpq_query::{parse_crpq, Crpq, CrpqAtom, QueryClass, Var};
use crpq_util::Interner;

/// One benchmark instance: a query pair plus the expected verdict
/// (`None` when it depends on the semantics — see `expected_for`).
pub struct ContainmentInstance {
    /// Left-hand query.
    pub q1: Crpq,
    /// Right-hand query.
    pub q2: Crpq,
    /// Human-readable family name.
    pub family: &'static str,
    /// Size parameter.
    pub n: usize,
    /// Expected verdict under standard and query-injective semantics.
    pub expected: bool,
    /// Expected verdict under atom-injective semantics (quotients can
    /// break containments that hold under the other two — Example 4.7's
    /// phenomenon; `None` marks cells we leave to the bench as-is).
    pub expected_ainj: Option<bool>,
}

/// The Figure-1 column identifiers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClassPair {
    /// CQ ⊆ CQ.
    CqCq,
    /// CQ ⊆ CRPQ.
    CqCrpq,
    /// CRPQ ⊆ CQ.
    CrpqCq,
    /// CQ ⊆ CRPQ_fin.
    CqCrpqFin,
    /// CRPQ_fin ⊆ CQ.
    CrpqFinCq,
    /// CRPQ ⊆ CRPQ_fin.
    CrpqCrpqFin,
    /// CRPQ_fin ⊆ CRPQ.
    CrpqFinCrpq,
    /// CRPQ_fin ⊆ CRPQ_fin.
    CrpqFinCrpqFin,
    /// CRPQ ⊆ CRPQ.
    CrpqCrpq,
}

impl ClassPair {
    /// All nine columns of Figure 1.
    pub const ALL: [ClassPair; 9] = [
        ClassPair::CqCq,
        ClassPair::CqCrpq,
        ClassPair::CrpqCq,
        ClassPair::CqCrpqFin,
        ClassPair::CrpqFinCq,
        ClassPair::CrpqCrpqFin,
        ClassPair::CrpqFinCrpq,
        ClassPair::CrpqFinCrpqFin,
        ClassPair::CrpqCrpq,
    ];

    /// Display name matching the paper's column headers.
    pub fn name(self) -> &'static str {
        match self {
            ClassPair::CqCq => "CQ/CQ",
            ClassPair::CqCrpq => "CQ/CRPQ",
            ClassPair::CrpqCq => "CRPQ/CQ",
            ClassPair::CqCrpqFin => "CQ/CRPQfin",
            ClassPair::CrpqFinCq => "CRPQfin/CQ",
            ClassPair::CrpqCrpqFin => "CRPQ/CRPQfin",
            ClassPair::CrpqFinCrpq => "CRPQfin/CRPQ",
            ClassPair::CrpqFinCrpqFin => "CRPQfin/CRPQfin",
            ClassPair::CrpqCrpq => "CRPQ/CRPQ",
        }
    }
}

/// An `a`-labelled chain CQ of `n` atoms (Boolean).
fn chain_cq(n: usize, alphabet: &mut Interner) -> Crpq {
    let a = alphabet.intern("a");
    let atoms = (0..n)
        .map(|i| CrpqAtom {
            src: Var(i as u32),
            dst: Var(i as u32 + 1),
            regex: Regex::lit(a),
        })
        .collect();
    Crpq::boolean(atoms)
}

/// A chain of `n` atoms each labelled `a+b` (CRPQ_fin, `2^n` expansions).
fn chain_fin(n: usize, alphabet: &mut Interner) -> Crpq {
    let a = alphabet.intern("a");
    let b = alphabet.intern("b");
    let atoms = (0..n)
        .map(|i| CrpqAtom {
            src: Var(i as u32),
            dst: Var(i as u32 + 1),
            regex: Regex::alt(vec![Regex::lit(a), Regex::lit(b)]),
        })
        .collect();
    Crpq::boolean(atoms)
}

/// A single-atom query whose language is `(a+b)^n` (free endpoints).
fn word_block(n: usize, alphabet: &mut Interner) -> Crpq {
    let a = alphabet.intern("a");
    let b = alphabet.intern("b");
    let alt = Regex::alt(vec![Regex::lit(a), Regex::lit(b)]);
    let regex = Regex::concat(vec![alt; n]);
    Crpq::boolean(vec![CrpqAtom {
        src: Var(0),
        dst: Var(1),
        regex,
    }])
}

/// Builds the instance for column `pair` and size `n`. `contained` selects
/// the positive or the planted-counter-example variant.
pub fn instance(
    pair: ClassPair,
    n: usize,
    contained: bool,
    alphabet: &mut Interner,
) -> ContainmentInstance {
    let n = n.max(1);
    let (q1, q2) = match pair {
        ClassPair::CqCq => {
            let q1 = chain_cq(n + 1, alphabet);
            let q2 = if contained {
                chain_cq(n, alphabet) // shorter chain folds in
            } else {
                chain_cq(n + 2, alphabet) // longer chain has no hom image
            };
            (q1, q2)
        }
        ClassPair::CqCrpq => {
            let q1 = chain_cq(n, alphabet);
            let q2 = if contained {
                parse_crpq("x -[a a*]-> y", alphabet).unwrap() // invariant: fixed workload query text parses
            } else {
                parse_crpq("x -[b b*]-> y", alphabet).unwrap() // invariant: fixed workload query text parses
            };
            (q1, q2)
        }
        ClassPair::CrpqCq => {
            // Q1 = a^{≥n}: every expansion contains an a-chain of length n.
            let a = alphabet.intern("a");
            let word = Regex::word(&vec![a; n]);
            let q1 = Crpq::boolean(vec![CrpqAtom {
                src: Var(0),
                dst: Var(1),
                regex: Regex::concat(vec![word, Regex::star(Regex::lit(a))]),
            }]);
            let q2 = if contained {
                chain_cq(n, alphabet)
            } else {
                chain_cq(n + 1, alphabet)
            };
            (q1, q2)
        }
        ClassPair::CqCrpqFin => {
            let q1 = chain_cq(n, alphabet);
            let q2 = if contained {
                // a + aa + … + a^n as a single atom; the chain embeds.
                let a = alphabet.intern("a");
                let words = (1..=n).map(|k| Regex::word(&vec![a; k])).collect();
                Crpq::boolean(vec![CrpqAtom {
                    src: Var(0),
                    dst: Var(1),
                    regex: Regex::alt(words),
                }])
            } else {
                word_block(n + 1, alphabet)
            };
            (q1, q2)
        }
        ClassPair::CrpqFinCq => {
            let q1 = chain_fin(n, alphabet);
            // Q2 = single (a or b) edge: every expansion has one ⇒ contained.
            let q2 = if contained {
                // one edge of either label: use two-variable CQ per label is
                // impossible conjunctively; use chain of 1 with label a and
                // rely on... instead: contained variant uses Q1 with all-a
                // first atom.
                let a = alphabet.intern("a");
                let mut q1b = chain_fin(n, alphabet);
                q1b.atoms[0].regex = Regex::lit(a);
                return ContainmentInstance {
                    q1: q1b,
                    q2: chain_cq(1, alphabet),
                    family: pair.name(),
                    n,
                    expected: true,
                    expected_ainj: Some(true),
                };
            } else {
                chain_cq(1, alphabet) // some expansion is all-b ⇒ no a-edge
            };
            (q1, q2)
        }
        ClassPair::CrpqCrpqFin => {
            let q1 = parse_crpq("(x, y) <- x -[a a*]-> y", alphabet).unwrap(); // invariant: fixed workload query text parses
            let q2 = if contained {
                // a + … + a^n ∪ tail-absorbing: contained only for words ≤ n,
                // so make Q2 = a (ε-free single) with Q1 = exactly a^{≤n}:
                let a = alphabet.intern("a");
                let words: Vec<Regex> = (1..=n).map(|k| Regex::word(&vec![a; k])).collect();
                let q1b = Crpq::with_free(
                    vec![CrpqAtom {
                        src: Var(0),
                        dst: Var(1),
                        regex: Regex::alt(words.clone()),
                    }],
                    vec![Var(0), Var(1)],
                );
                return ContainmentInstance {
                    q1: q1b,
                    q2: Crpq::with_free(
                        vec![CrpqAtom {
                            src: Var(0),
                            dst: Var(1),
                            regex: Regex::alt(words),
                        }],
                        vec![Var(0), Var(1)],
                    ),
                    family: pair.name(),
                    n,
                    expected: true,
                    expected_ainj: Some(true),
                };
            } else {
                // finite right side always misses long expansions
                let a = alphabet.intern("a");
                let words = (1..=n).map(|k| Regex::word(&vec![a; k])).collect();
                Crpq::with_free(
                    vec![CrpqAtom {
                        src: Var(0),
                        dst: Var(1),
                        regex: Regex::alt(words),
                    }],
                    vec![Var(0), Var(1)],
                )
            };
            (q1, q2)
        }
        ClassPair::CrpqFinCrpq => {
            let q1 = chain_fin(n, alphabet);
            let q2 = if contained {
                parse_crpq("x -[(a+b)(a+b)*]-> y", alphabet).unwrap() // invariant: fixed workload query text parses
            } else {
                parse_crpq("x -[a (a+b)*]-> y", alphabet).unwrap() // all-b expansion escapes; invariant: fixed workload query text parses
            };
            (q1, q2)
        }
        ClassPair::CrpqFinCrpqFin => {
            let q1 = chain_fin(n, alphabet);
            let q2 = if contained {
                // Same chain shape with per-atom superset languages:
                // contained under all three semantics (the single-atom
                // `(a+b)^n` variant would fail under a-inj — that is
                // Example 4.7's phenomenon, tested separately).
                let a = alphabet.intern("a");
                let b = alphabet.intern("b");
                let c = alphabet.intern("c");
                let atoms = (0..n)
                    .map(|i| CrpqAtom {
                        src: Var(i as u32),
                        dst: Var(i as u32 + 1),
                        regex: Regex::alt(vec![Regex::lit(a), Regex::lit(b), Regex::lit(c)]),
                    })
                    .collect();
                Crpq::boolean(atoms)
            } else {
                word_block(n + 1, alphabet)
            };
            (q1, q2)
        }
        ClassPair::CrpqCrpq => {
            // The abstraction-engine family: a^+·chain vs single-atom join.
            let a = alphabet.intern("a");
            let b = alphabet.intern("b");
            let q1 = Crpq::with_free(
                vec![
                    CrpqAtom {
                        src: Var(0),
                        dst: Var(1),
                        regex: Regex::plus(Regex::lit(a)),
                    },
                    CrpqAtom {
                        src: Var(1),
                        dst: Var(2),
                        regex: Regex::plus(Regex::lit(b)),
                    },
                ],
                vec![Var(0), Var(2)],
            );
            let q2 = if contained {
                // a (a+b)* b absorbs every a^m b^k chain
                Crpq::with_free(
                    vec![CrpqAtom {
                        src: Var(0),
                        dst: Var(1),
                        regex: Regex::concat(vec![
                            Regex::lit(a),
                            Regex::star(Regex::alt(vec![Regex::lit(a), Regex::lit(b)])),
                            Regex::lit(b),
                        ]),
                    }],
                    vec![Var(0), Var(1)],
                )
            } else {
                // a b only: a^2 b misses
                Crpq::with_free(
                    vec![CrpqAtom {
                        src: Var(0),
                        dst: Var(1),
                        regex: Regex::word(&[a, b]),
                    }],
                    vec![Var(0), Var(1)],
                )
            };
            (q1, q2)
        }
    };
    let expected_ainj = match (pair, contained) {
        // The x/z-merging quotient refutes the CRPQ/CRPQ positive family
        // under a-inj (Example 4.7's phenomenon at CRPQ scale).
        (ClassPair::CrpqCrpq, true) => Some(false),
        _ => Some(contained),
    };
    ContainmentInstance {
        q1,
        q2,
        family: pair.name(),
        n,
        expected: contained,
        expected_ainj,
    }
}

/// Checks the class membership promises of the family.
pub fn class_of(pair: ClassPair) -> (QueryClass, QueryClass) {
    match pair {
        ClassPair::CqCq => (QueryClass::Cq, QueryClass::Cq),
        ClassPair::CqCrpq => (QueryClass::Cq, QueryClass::Crpq),
        ClassPair::CrpqCq => (QueryClass::Crpq, QueryClass::Cq),
        ClassPair::CqCrpqFin => (QueryClass::Cq, QueryClass::CrpqFin),
        ClassPair::CrpqFinCq => (QueryClass::CrpqFin, QueryClass::Cq),
        ClassPair::CrpqCrpqFin => (QueryClass::Crpq, QueryClass::CrpqFin),
        ClassPair::CrpqFinCrpq => (QueryClass::CrpqFin, QueryClass::Crpq),
        ClassPair::CrpqFinCrpqFin => (QueryClass::CrpqFin, QueryClass::CrpqFin),
        ClassPair::CrpqCrpq => (QueryClass::Crpq, QueryClass::Crpq),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crpq_containment::{contain, Semantics};

    #[test]
    fn classes_as_promised() {
        for pair in ClassPair::ALL {
            let mut it = Interner::new();
            let inst = instance(pair, 2, true, &mut it);
            let (c1, c2) = class_of(pair);
            assert!(inst.q1.classify() <= c1, "{}: Q1 class", pair.name());
            assert!(inst.q2.classify() <= c2, "{}: Q2 class", pair.name());
        }
    }

    #[test]
    fn verdicts_match_expectations() {
        for pair in ClassPair::ALL {
            for contained in [true, false] {
                let mut it = Interner::new();
                let inst = instance(pair, 2, contained, &mut it);
                for sem in Semantics::ALL {
                    // a-inj over large left sides can be slow; keep n small.
                    let out = contain(&inst.q1, &inst.q2, sem);
                    let expected = match sem {
                        Semantics::AtomInjective => inst.expected_ainj,
                        _ => Some(inst.expected),
                    };
                    if let (Some(verdict), Some(expected)) = (out.as_bool(), expected) {
                        assert_eq!(
                            verdict,
                            expected,
                            "{} n=2 contained={contained} sem={sem}",
                            pair.name()
                        );
                    }
                }
            }
        }
    }
}
