//! Containment as a query-optimisation primitive (§1: "checking containment
//! … can be a means for query optimization").
//!
//! Two optimisations are demonstrated, and both are *semantics-sensitive*:
//! a rewrite that is sound under standard semantics can be unsound under an
//! injective semantics, which is exactly why the paper studies containment
//! per semantics.
//!
//! ```sh
//! cargo run --example query_optimizer
//! ```

use crpq::prelude::*;

fn main() {
    let mut sigma = Interner::new();

    // ------------------------------------------------------------------
    // 1. Redundant-atom elimination.
    //    Q  = x -a-> y ∧ x -[a+b]-> y   — is the second atom redundant?
    //    Q' = x -a-> y
    //    Sound iff Q ≡ Q' (both containments).
    // ------------------------------------------------------------------
    let q = parse_crpq("x -[a]-> y, x -[a+b]-> y", &mut sigma).unwrap();
    let qp = parse_crpq("x -[a]-> y", &mut sigma).unwrap();
    println!("redundant-atom elimination Q ≡ Q' ?");
    for sem in Semantics::ALL {
        let fwd = contain(&q, &qp, sem).as_bool();
        let bwd = contain(&qp, &q, sem).as_bool();
        let verdict = match (fwd, bwd) {
            (Some(true), Some(true)) => "sound (equivalent)",
            (Some(_), Some(_)) => "UNSOUND (not equivalent)",
            _ => "undetermined within budget",
        };
        println!(
            "  {:>6}: forward {:?}, backward {:?} → {}",
            sem.to_string(),
            fwd,
            bwd,
            verdict
        );
    }

    // ------------------------------------------------------------------
    // 2. Atom fusion (Remark C.1): x -a-> m ∧ m -b-> y  ⇒  x -[a b]-> y
    //    when m is existential with degree (1,1).
    //    Sound under st and q-inj; UNSOUND under a-inj (Example 4.7!).
    // ------------------------------------------------------------------
    let chain = parse_crpq("x -[a]-> m, m -[b]-> y", &mut sigma).unwrap();
    let fused = parse_crpq("x -[a b]-> y", &mut sigma).unwrap();
    println!("\natom fusion (x-a->m ∧ m-b->y ⇒ x-[ab]->y)?");
    for sem in Semantics::ALL {
        let fwd = contain(&chain, &fused, sem).as_bool();
        let bwd = contain(&fused, &chain, sem).as_bool();
        let sound = fwd == Some(true) && bwd == Some(true);
        println!(
            "  {:>6}: {}",
            sem.to_string(),
            if sound {
                "sound"
            } else {
                "UNSOUND — keep the join variable!"
            }
        );
    }

    // ------------------------------------------------------------------
    // 3. Subsumption pruning in a query log: drop queries contained in
    //    an already-answered one.
    // ------------------------------------------------------------------
    let log = [
        "x -[knows knows*]-> y",
        "x -[knows]-> y",
        "x -[knows knows]-> y",
        "x -[likes]-> y",
    ];
    println!("\nsubsumption pruning under standard semantics:");
    let parsed: Vec<Crpq> = log
        .iter()
        .map(|t| parse_crpq(t, &mut sigma).unwrap())
        .collect();
    for (i, qi) in parsed.iter().enumerate() {
        for (j, qj) in parsed.iter().enumerate() {
            if i != j && contain(qi, qj, Semantics::Standard).is_contained() {
                println!("  `{}` ⊆st `{}` → prune", log[i], log[j]);
            }
        }
    }
}
