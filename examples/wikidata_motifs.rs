//! Wikidata-style workload tour (the paper's §1 motivation, citing the
//! query-log studies [7, 8]): run a log of realistically shaped property
//! paths over a synthetic knowledge graph, compare the three semantics per
//! shape class, and use the tractability classifier to predict which
//! queries are cheap under simple-path evaluation.
//!
//! ```sh
//! cargo run --release --example wikidata_motifs
//! ```

use crpq::automata::tractability::{classify, AnalysisLimits, SimplePathClass};
use crpq::prelude::*;
use crpq::workloads::wikidata;

fn main() {
    let g = wikidata::knowledge_graph(60, 7);
    println!(
        "knowledge graph: {} entities, {} statements, properties {:?}",
        g.num_nodes(),
        g.num_edges(),
        wikidata::PROPERTIES
    );

    let mut sigma = g.alphabet().clone();
    let log = wikidata::query_log(12, &mut sigma, 99);
    println!(
        "\n{:<14} {:>5} {:>6} {:>6} {:>6}  analysis",
        "shape", "arity", "st", "a-inj", "q-inj"
    );
    let mut totals = [0usize; 3];
    for (shape, q) in &log {
        let st = eval_tuples(q, &g, Semantics::Standard).len();
        let ai = eval_tuples_analyzed(q, &g, Semantics::AtomInjective).len();
        let qi = eval_tuples(q, &g, Semantics::QueryInjective).len();
        assert!(qi <= ai && ai <= st, "Remark 2.1 hierarchy");
        totals[0] += st;
        totals[1] += ai;
        totals[2] += qi;

        // Per-atom tractability: are the simple-path checks of this query
        // guaranteed cheap?
        let all_tractable = q.atoms.iter().all(|atom| {
            let nfa = atom.nfa();
            classify(&nfa, &nfa.symbols(), AnalysisLimits::default())
                .is_some_and(SimplePathClass::is_tractable)
        });
        let note = if all_tractable {
            "all atoms tractable"
        } else {
            "has frontier/hard atom"
        };
        println!(
            "{:<14} {:>5} {:>6} {:>6} {:>6}  {note}",
            format!("{shape:?}"),
            q.free.len(),
            st,
            ai,
            qi
        );
    }
    println!(
        "\ntotals: st {} ⊇ a-inj {} ⊇ q-inj {}  (Remark 2.1 on every query)",
        totals[0], totals[1], totals[2]
    );

    // The log-study observation that powers the fast path: transitive
    // closures of unions of properties are deletion-closed, so their
    // simple-path evaluation is reachability — the common case is the
    // cheap case.
    let mut s2 = Interner::new();
    let closure = parse_regex(
        "(instanceOf + subclassOf)(instanceOf + subclassOf)*",
        &mut s2,
    )
    .unwrap();
    let nfa = Nfa::from_regex(&closure);
    println!(
        "\n`(instanceOf+subclassOf)⁺` classifies as {:?}",
        classify(&nfa, &nfa.symbols(), AnalysisLimits::default()).unwrap()
    );
}
