//! The paper's motivating scenario (§1, §7): finding *disjoint* paths.
//!
//! On a social network, "x reaches two different people through completely
//! disjoint acquaintance chains" is expressible only under query-injective
//! semantics — standard and atom-injective semantics let the chains share
//! intermediaries.
//!
//! ```sh
//! cargo run --example social_network
//! ```

use crpq::graph::generators;
use crpq::prelude::*;

fn main() {
    // Two communities bridged by rare follows-edges.
    let mut g = generators::social_network(2, 6, 0.45, 0.03, 42);
    println!(
        "social network: {} people, {} relationships",
        g.num_nodes(),
        g.num_edges()
    );

    // Q(x): x reaches two distinct people via acquaintance chains that are
    // internally disjoint — a "redundant introduction" pattern.
    let q = parse_crpq(
        "(x) <- x -[knows knows]-> y, x -[knows knows]-> z",
        g.alphabet_mut(),
    )
    .unwrap();

    let st = eval_tuples(&q, &g, Semantics::Standard);
    let ai = eval_tuples(&q, &g, Semantics::AtomInjective);
    let qi = eval_tuples(&q, &g, Semantics::QueryInjective);
    println!("\npeople with two 2-hop introductions:");
    println!(
        "  standard        : {:>3} (chains may share everyone)",
        st.len()
    );
    println!(
        "  atom-injective  : {:>3} (each chain is a simple path)",
        ai.len()
    );
    println!(
        "  query-injective : {:>3} (chains are pairwise disjoint)",
        qi.len()
    );

    // Show a person separating the semantics, if any.
    if let Some(t) = ai.iter().find(|t| !qi.contains(t)) {
        println!(
            "\n{} has two simple 2-hop chains, but every pair overlaps: \
             a-inj ✓, q-inj ✗",
            g.node_name(t[0])
        );
    }

    // Hierarchy (Remark 2.1) always holds:
    let report = check_hierarchy(&q, &g);
    assert!(report.holds());
    println!(
        "\nRemark 2.1 check: q-inj ⊆ a-inj ⊆ st  ✓  ({} ⊆ {} ⊆ {})",
        report.query_injective, report.atom_injective, report.standard
    );

    // Cross-community couriers: a knows-chain out, a follows-edge back,
    // under each semantics.
    let courier = parse_crpq(
        "(x, y) <- x -[knows knows*]-> y, y -[follows]-> x",
        g.alphabet_mut(),
    )
    .unwrap();
    for sem in Semantics::ALL {
        let n = eval_tuples(&courier, &g, sem).len();
        println!("courier pairs under {:>6}: {}", sem.to_string(), n);
    }
}
