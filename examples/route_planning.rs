//! Route planning on a grid: simple paths (no revisited junction) versus
//! arbitrary walks, and the exponential cost of simple-path search
//! (Prop 3.2: NP-completeness in data complexity).
//!
//! ```sh
//! cargo run --example route_planning
//! ```

use crpq::graph::{generators, rpq};
use crpq::prelude::*;
use std::time::Instant;

fn main() {
    // A one-way street grid: `r` goes east, `d` goes south.
    let mut g = generators::grid(4, 5, "r", "d");
    println!(
        "city grid: {} junctions, {} one-way streets",
        g.num_nodes(),
        g.num_edges()
    );

    let start = g.node_by_name("g0_0").unwrap();
    let goal = g.node_by_name("g3_4").unwrap();

    // Any route east/south, arbitrary length.
    let route = parse_regex_nfa("(r+d)(r+d)*", &mut g);
    println!(
        "\nreachable at all?           {}",
        rpq::rpq_exists(&g, &route, start, goal)
    );
    println!(
        "reachable via simple path?  {}",
        rpq::simple_path_exists(&g, &route, start, goal, &g.node_set())
    );

    // Count simple routes (each visits every junction at most once).
    let mut count = 0usize;
    rpq::for_each_simple_path(&g, &route, start, goal, &g.node_set(), |_| {
        count += 1;
        std::ops::ControlFlow::Continue(())
    });
    println!("number of simple routes:    {count}");

    // A detour constraint: exactly 9 street segments.
    let nine = parse_regex_nfa(
        "(r+d) (r+d) (r+d) (r+d) (r+d) (r+d) (r+d) (r+d) (r+d)",
        &mut g,
    );
    println!(
        "9-segment simple route?     {}",
        rpq::simple_path_exists(&g, &nine, start, goal, &g.node_set())
    );

    // The NP wall: diamond ladders have exponentially many simple paths;
    // forcing a *failed* search explores them all.
    println!("\nsimple-path search cost on diamond ladders (failing query):");
    for n in [6usize, 8, 10, 12] {
        let mut ladder = crpq::workloads::scaling::diamond_ladder(n);
        // a^{2n+1} does not exist (all s0→sn paths have length 2n).
        let expr = vec!["a"; 2 * n + 1].join(" ");
        let nfa = parse_regex_nfa(&expr, &mut ladder);
        let (s, t) = (
            ladder.node_by_name("s0").unwrap(),
            ladder.node_by_name(&format!("s{n}")).unwrap(),
        );
        let t0 = Instant::now();
        let found = rpq::simple_path_exists(&ladder, &nfa, s, t, &ladder.node_set());
        println!(
            "  n={n:>2}: {} simple paths explored in {:?} (found={found})",
            1u64 << n,
            t0.elapsed()
        );
        assert!(!found);
    }
}

/// Helper: parse a regex against the graph's alphabet and compile it.
fn parse_regex_nfa(expr: &str, g: &mut GraphDb) -> Nfa {
    let regex = parse_regex(expr, g.alphabet_mut()).unwrap();
    Nfa::from_regex(&regex)
}
