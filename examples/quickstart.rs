//! Quickstart: build a graph, run a CRPQ under all three semantics, and
//! check a containment.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use crpq::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. Build a graph database.
    // ------------------------------------------------------------------
    let mut b = GraphBuilder::new();
    b.edge("ada", "knows", "bob");
    b.edge("bob", "knows", "cleo");
    b.edge("cleo", "knows", "ada");
    b.edge("ada", "worksWith", "cleo");
    let mut g = b.finish();
    println!("graph: {} nodes, {} edges", g.num_nodes(), g.num_edges());

    // ------------------------------------------------------------------
    // 2. Parse a CRPQ. `knows⁺` is written `knows knows*`.
    // ------------------------------------------------------------------
    let q = parse_crpq(
        "(x, y) <- x -[knows knows*]-> y, y -[worksWith]-> x",
        g.alphabet_mut(),
    )
    .expect("query parses");
    println!("query class: {}", q.classify());

    // ------------------------------------------------------------------
    // 3. Evaluate under the three semantics of the paper (§2.1).
    // ------------------------------------------------------------------
    for sem in Semantics::ALL {
        let tuples = eval_tuples(&q, &g, sem);
        let rendered: Vec<String> = tuples
            .iter()
            .map(|t| format!("({}, {})", g.node_name(t[0]), g.node_name(t[1])))
            .collect();
        println!("{:>6}: {}", sem.to_string(), rendered.join(" "));
    }

    // ------------------------------------------------------------------
    // 4. Static analysis: containment under each semantics (§4).
    // ------------------------------------------------------------------
    let mut sigma = Interner::new();
    let q1 = parse_crpq("x -[a]-> y, y -[b]-> z", &mut sigma).unwrap();
    let q2 = parse_crpq("x -[a b]-> y", &mut sigma).unwrap();
    println!("\nExample 4.7 of the paper: Q1 = x-a->y ∧ y-b->z, Q2 = x-[ab]->y");
    for sem in Semantics::ALL {
        let out = contain(&q1, &q2, sem);
        println!("  Q1 ⊆{}? {:?}", sem, out.as_bool());
    }
}
