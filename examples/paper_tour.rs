//! A guided tour through every numbered example of the paper, with the
//! library verifying each claim as it goes.
//!
//! ```sh
//! cargo run --example paper_tour
//! ```

use crpq::containment::abstraction;
use crpq::prelude::*;
use crpq::reductions::{
    gcp2_brute_force, gcp2_to_qinj_containment, pcp_brute_force, Gcp2Instance, PcpInstance,
};
use crpq::workloads::paper_examples as paper;

fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "✓" } else { "✗" });
    assert!(ok, "paper claim failed: {label}");
}

fn main() {
    // ---------------------------------------------------------------- §1
    println!("§1 — intro example Q = ∃x,y,z. x-(a+b)⁺->y ∧ x-(b+c)⁺->z");
    let mut sigma = Interner::new();
    let q = paper::intro_query(&mut sigma);
    let g = paper::intro_b_path(&sigma, 2);
    check(
        "holds on a b-path under a-inj",
        eval_boolean(&q, &g, Semantics::AtomInjective),
    );
    check(
        "fails on a b-path under q-inj",
        !eval_boolean(&q, &g, Semantics::QueryInjective),
    );

    // ---------------------------------------------------- §2.1, Example 2.1
    println!("\n§2.1 — Example 2.1 / Figure 2 (semantics separation)");
    let mut sigma = Interner::new();
    let q = paper::example21_query(&mut sigma);
    let g = paper::example21_g(&sigma);
    let (u, w) = (g.node_by_name("u").unwrap(), g.node_by_name("w").unwrap());
    check(
        "(u,w) ∈ Q(G)_a-inj",
        eval_contains(&q, &g, &[u, w], Semantics::AtomInjective),
    );
    check(
        "(u,w) ∉ Q(G)_q-inj",
        !eval_contains(&q, &g, &[u, w], Semantics::QueryInjective),
    );
    check(
        "Q(G)_st = Q(G)_a-inj",
        eval_tuples(&q, &g, Semantics::Standard) == eval_tuples(&q, &g, Semantics::AtomInjective),
    );
    let gp = paper::example21_gprime(&sigma);
    let (u, v) = (gp.node_by_name("u").unwrap(), gp.node_by_name("v").unwrap());
    check(
        "(u,v) ∈ Q(G′)_st",
        eval_contains(&q, &gp, &[u, v], Semantics::Standard),
    );
    check(
        "(u,v) ∉ Q(G′)_a-inj",
        !eval_contains(&q, &gp, &[u, v], Semantics::AtomInjective),
    );

    // ------------------------------------------------------- Remark 2.1
    println!("\nRemark 2.1 — the hierarchy q-inj ⊆ a-inj ⊆ st");
    let full = paper::example21_full_separation(&sigma);
    let report = check_hierarchy(&q, &full);
    check("hierarchy holds", report.holds());
    check(
        "all three semantics separated on one graph",
        report.fully_separated(),
    );

    // ------------------------------------------------------- Example 4.7
    println!("\n§4 — Example 4.7 (containment incomparability)");
    let mut sigma = Interner::new();
    let (q1, q2, q1p, q2p) = paper::example47_queries(&mut sigma);
    check(
        "Q1 ⊆q-inj Q2",
        contain(&q1, &q2, Semantics::QueryInjective).is_contained(),
    );
    check(
        "Q1 ⊆st Q2",
        contain(&q1, &q2, Semantics::Standard).is_contained(),
    );
    check(
        "Q1 ⊄a-inj Q2",
        contain(&q1, &q2, Semantics::AtomInjective).is_not_contained(),
    );
    check(
        "Q1′ ⊆a-inj Q2′",
        contain(&q1p, &q2p, Semantics::AtomInjective).is_contained(),
    );
    check(
        "Q1′ ⊆st Q2′",
        contain(&q1p, &q2p, Semantics::Standard).is_contained(),
    );
    check(
        "Q1′ ⊄q-inj Q2′",
        contain(&q1p, &q2p, Semantics::QueryInjective).is_not_contained(),
    );

    // ----------------------------------------------- Theorem 5.1 machinery
    println!("\n§5 — Theorem 5.1: the PSpace abstraction engine at work");
    let mut sigma = Interner::new();
    let qa = parse_crpq("(x, z) <- x -[a a*]-> y, y -[b b*]-> z", &mut sigma).unwrap();
    let qb = parse_crpq("(x, z) <- x -[a (a+b)* b]-> z", &mut sigma).unwrap();
    check(
        "a⁺·b⁺ chain ⊆q-inj a(a+b)*b (infinite languages, exact verdict)",
        abstraction::try_contain_qinj(&qa, &qb) == Some(true),
    );
    check(
        "converse refuted (abab-expansion)",
        abstraction::try_contain_qinj(&qb, &qa) == Some(false),
    );

    // ----------------------------------------------- Theorem 5.2 (PCP)
    println!("\n§5 — Theorem 5.2: the PCP reduction skeleton");
    let inst = PcpInstance {
        pairs: vec![("ab".into(), "a".into()), ("c".into(), "bc".into())],
    };
    let sol = pcp_brute_force(&inst, 6).unwrap();
    check("PCP instance (ab,a)(c,bc) solved by 1·2", sol == vec![0, 1]);
    let mut sigma = Interner::new();
    let red = crpq::reductions::pcp_to_ainj_containment(&inst, &mut sigma);
    let witness = crpq::reductions::pcp::witness_expansion(&red, &inst, &sol, false);
    check(
        "solution witness satisfies the I-Î condition",
        crpq::reductions::pcp::satisfies_wellformedness(&red, &witness),
    );

    // ----------------------------------------------- Theorem 6.1 (GCP2)
    println!("\n§6 — Theorem 6.1: GCP2 ⇒ q-inj containment (Figure 6)");
    let tri = Gcp2Instance::new(3, &[(0, 1), (1, 2), (0, 2)], 2);
    let mut sigma = Interner::new();
    let (g1, g2, _) = gcp2_to_qinj_containment(&tri, &mut sigma);
    check(
        "triangle not 2-colourable (brute force)",
        !gcp2_brute_force(&tri),
    );
    check(
        "reduction: Q1 ⊆q-inj Q2 (negative instance)",
        contain(&g1, &g2, Semantics::QueryInjective).is_contained(),
    );

    println!("\nAll paper claims verified. ∎");
}
