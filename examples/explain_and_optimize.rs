//! Explainability and static optimisation tour: witness extraction
//! (certificates for query answers), per-atom simple-path tractability
//! classification (the §3 trichotomy discussion), boundedness analysis
//! (§7 outlook), and containment-based atom minimisation.
//!
//! ```sh
//! cargo run --example explain_and_optimize
//! ```

use crpq::automata::tractability::{classify, AnalysisLimits};
use crpq::containment::optimize::{minimize_atoms, Equivalence};
use crpq::containment::{boundedness, optimize};
use crpq::prelude::*;

fn main() {
    // ------------------------------------------------------------------
    // 1. A flight network; q-inj answers come with verifiable witnesses.
    // ------------------------------------------------------------------
    let mut b = GraphBuilder::new();
    for (u, l, v) in [
        ("SCL", "fly", "EZE"),
        ("EZE", "fly", "GRU"),
        ("SCL", "fly", "LIM"),
        ("LIM", "fly", "BOG"),
        ("BOG", "fly", "GRU"),
        ("GRU", "fly", "CDG"),
        ("CDG", "rail", "BOD"),
    ] {
        b.edge(u, l, v);
    }
    let mut g = b.finish();

    // Two internally disjoint flight routes SCL → GRU, then onward to BOD.
    let q = parse_crpq(
        "(s, t) <- s -[fly fly*]-> m, s -[fly fly*]-> m, m -[fly rail]-> t",
        g.alphabet_mut(),
    )
    .unwrap();
    let (scl, bod) = (
        g.node_by_name("SCL").unwrap(),
        g.node_by_name("BOD").unwrap(),
    );

    println!("== witnesses (disjoint routes under q-inj) ==");
    match eval_witness(&q, &g, &[scl, bod], Semantics::QueryInjective) {
        Some(w) => {
            for (i, path) in w.atom_paths.iter().enumerate() {
                let names: Vec<&str> = path.iter().map(|&n| g.node_name(n)).collect();
                println!("  atom {i}: {}", names.join(" → "));
            }
            verify_witness(&q, &g, &[scl, bod], Semantics::QueryInjective, &w)
                .expect("extracted witness verifies independently");
            println!("  (witness verified independently of the search)");
        }
        None => println!("  no q-inj witness"),
    }

    // ------------------------------------------------------------------
    // 2. Simple-path tractability per atom language (§3 / [3]).
    // ------------------------------------------------------------------
    println!("\n== simple-path tractability classes ==");
    let mut sigma = Interner::new();
    for expr in ["fly*", "(fly fly)*", "fly* rail fly*", "fly rail"] {
        let nfa = Nfa::from_regex(&parse_regex(expr, &mut sigma).unwrap());
        let class = classify(&nfa, &nfa.symbols(), AnalysisLimits::default());
        println!("  {expr:>18} → {class:?}");
    }

    // ------------------------------------------------------------------
    // 3. Boundedness (§7): is the recursion real?
    // ------------------------------------------------------------------
    println!("\n== boundedness ==");
    let mut sigma = Interner::new();
    for text in [
        "(x, y) <- x -[fly]-> y, x -[fly + fly rail]-> y", // star-free: bounded
        "(x, y) <- x -[fly fly*]-> y",                     // genuine reachability
    ] {
        let q = parse_crpq(text, &mut sigma).unwrap();
        let verdict = boundedness::check_boundedness(&q, Default::default());
        println!("  {text}\n    → {verdict:?}");
    }

    // ------------------------------------------------------------------
    // 4. Atom minimisation via containment (§1's optimisation motivation).
    // ------------------------------------------------------------------
    println!("\n== atom minimisation ==");
    let mut sigma = Interner::new();
    let bloated = parse_crpq(
        "(x, y) <- x -[fly]-> y, x -[fly + fly rail]-> y, x -[fly + rail]-> y",
        &mut sigma,
    )
    .unwrap();
    for sem in Semantics::ALL {
        let result = minimize_atoms(&bloated, sem);
        println!(
            "  {sem:>6}: {} → {} atoms (removed {:?}, certified: {})",
            bloated.atoms.len(),
            result.query.atoms.len(),
            result.removed,
            result.certified
        );
    }

    // Example 4.7 as an equivalence check.
    println!("\n== equivalence (Example 4.7) ==");
    let q1 = parse_crpq("(x, z) <- x -[a]-> y, y -[b]-> z", &mut sigma).unwrap();
    let q2 = parse_crpq("(x, z) <- x -[a b]-> z", &mut sigma).unwrap();
    for sem in Semantics::ALL {
        let verdict = match optimize::equivalent(&q1, &q2, sem) {
            Equivalence::Equivalent => "equivalent".to_string(),
            Equivalence::LeftNotContained(_) => "Q1 ⊄ Q2".to_string(),
            Equivalence::RightNotContained(_) => "Q2 ⊄ Q1".to_string(),
            Equivalence::Inconclusive => "inconclusive".to_string(),
        };
        println!("  unfolded-vs-concatenated under {sem:>6}: {verdict}");
    }
}
