//! Adversarial cross-validation of the Appendix-C abstraction engine
//! against the exhaustive counter-example engine on random `CRPQ_fin`
//! corpora — including self-loops, free variables, multi-atom sides and
//! 3-letter alphabets. Any disagreement is a real bug in one of the two
//! independent implementations.

use crpq::containment::abstraction::try_contain_qinj;
use crpq::prelude::*;
use crpq::query::ExpansionLimits;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Random connected CRPQ_fin with optional self-loops and free vars.
fn random_connected_query(
    rng: &mut StdRng,
    sigma: &mut Interner,
    num_vars: usize,
    num_atoms: usize,
    alphabet: usize,
    arity: usize,
) -> Crpq {
    use crpq::automata::Regex;
    let syms: Vec<Symbol> = (0..alphabet)
        .map(|i| sigma.intern(&format!("s{i}")))
        .collect();
    let mut atoms = Vec::with_capacity(num_atoms);
    for k in 0..num_atoms {
        // Chain-ish connectivity: atom k links var k to a random earlier or
        // later var, keeping the constraint graph connected.
        let src = Var((k % num_vars) as u32);
        let dst = Var(rng.gen_range(0..num_vars) as u32);
        let words: Vec<Regex> = (0..rng.gen_range(1..=2))
            .map(|_| {
                let len = rng.gen_range(1..=2);
                Regex::word(
                    &(0..len)
                        .map(|_| syms[rng.gen_range(0..syms.len())])
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        atoms.push(CrpqAtom {
            src,
            dst,
            regex: Regex::alt(words),
        });
    }
    let free = (0..arity)
        .map(|_| Var(rng.gen_range(0..num_vars) as u32))
        .collect();
    Crpq {
        num_vars,
        atoms,
        free,
    }
}

fn exhaustive(q1: &Crpq, q2: &Crpq) -> Option<bool> {
    contain_with(
        q1,
        q2,
        Semantics::QueryInjective,
        ContainmentConfig {
            limits: ExpansionLimits {
                max_word_len: 6,
                max_expansions: usize::MAX,
            },
            threads: 1,
        },
    )
    .as_bool()
}

#[test]
fn abstraction_agrees_on_adversarial_corpus() {
    let mut rng = StdRng::seed_from_u64(20230413); // the paper's arXiv date
    let mut applied = 0usize;
    let mut decided = 0usize;
    for trial in 0..160 {
        let mut sigma = Interner::new();
        let arity = rng.gen_range(0..=1);
        let (v1, a1, k1) = (
            rng.gen_range(2..=3),
            rng.gen_range(1..=2),
            rng.gen_range(2..=3),
        );
        let q1 = random_connected_query(&mut rng, &mut sigma, v1, a1, k1, arity);
        let (a2, k2) = (rng.gen_range(1..=2), rng.gen_range(2..=3));
        let q2 = random_connected_query(&mut rng, &mut sigma, 2, a2, k2, arity);
        if let Some(abs) = try_contain_qinj(&q1, &q2) {
            applied += 1;
            if let Some(naive) = exhaustive(&q1, &q2) {
                decided += 1;
                assert_eq!(
                    abs, naive,
                    "trial {trial}: engines disagree on\n  Q1 = {q1:?}\n  Q2 = {q2:?}"
                );
            }
        }
    }
    // The fragment must actually be exercised, not vacuously skipped.
    assert!(
        applied >= 40,
        "abstraction engine applied only {applied} times"
    );
    assert!(decided >= 40, "cross-checked only {decided} instances");
}

#[test]
fn abstraction_agrees_on_starred_instances_with_planted_words() {
    // For infinite-language left sides the naive engine cannot certify
    // containment, but it can refute: every abstraction-verdict `false`
    // must be confirmed by a bounded counter-example search, and every
    // bounded refutation must be matched by the abstraction engine.
    let mut rng = StdRng::seed_from_u64(7);
    let mut checked = 0usize;
    for _ in 0..60 {
        let mut sigma = Interner::new();
        use crpq::automata::Regex;
        let a = sigma.intern("a");
        let b = sigma.intern("b");
        // Q1 = x -[w1 (w2)*]-> y for random short words.
        let w = |rng: &mut StdRng, max: usize| -> Vec<Symbol> {
            (0..rng.gen_range(1..=max))
                .map(|_| if rng.gen_bool(0.5) { a } else { b })
                .collect()
        };
        let q1 = Crpq::with_free(
            vec![CrpqAtom {
                src: Var(0),
                dst: Var(1),
                regex: Regex::concat(vec![
                    Regex::word(&w(&mut rng, 2)),
                    Regex::star(Regex::word(&w(&mut rng, 2))),
                ]),
            }],
            vec![Var(0), Var(1)],
        );
        let q2 = Crpq::with_free(
            vec![CrpqAtom {
                src: Var(0),
                dst: Var(1),
                regex: Regex::concat(vec![
                    Regex::word(&w(&mut rng, 2)),
                    Regex::star(Regex::word(&w(&mut rng, 2))),
                ]),
            }],
            vec![Var(0), Var(1)],
        );
        let Some(abs) = try_contain_qinj(&q1, &q2) else {
            continue;
        };
        checked += 1;
        let bounded = contain_with(
            &q1,
            &q2,
            Semantics::QueryInjective,
            ContainmentConfig {
                limits: ExpansionLimits {
                    max_word_len: 8,
                    max_expansions: 100_000,
                },
                threads: 1,
            },
        );
        match bounded {
            Outcome::NotContained(_) => {
                assert!(
                    !abs,
                    "bounded refutation vs abstraction `true`:\n{q1:?}\n{q2:?}"
                );
            }
            Outcome::Contained => {
                assert!(abs, "exhaustive containment vs abstraction `false`");
            }
            Outcome::Inconclusive { .. } => {
                // Single-atom q-inj containment coincides with language
                // inclusion (paths embed only as themselves): use the DFA
                // oracle as independent ground truth.
                let alphabet = [a, b];
                let truth = crpq::automata::dfa::nfa_subset(
                    &q1.atoms[0].nfa(),
                    &q2.atoms[0].nfa(),
                    &alphabet,
                );
                assert_eq!(
                    abs, truth,
                    "abstraction vs language inclusion:\n{q1:?}\n{q2:?}"
                );
            }
        }
    }
    assert!(checked >= 30, "only {checked} instances exercised");
}
