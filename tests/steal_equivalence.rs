//! Differential tests pinning the work-stealing parallel evaluator
//! against the static-partitioning baseline, the sequential engine and
//! the enumeration oracle on skewed Zipf label-rich graphs — the workload
//! family where a static top-level split strands workers behind the hot
//! node's subtree, so every scheduler path (seeding, donation, deepest
//! -level splitting, quiescence) is actually exercised.

use crpq::core::{eval_tuples_parallel_static, eval_tuples_with, EvalStrategy};
use crpq::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Work-stealing ≡ static partitioning ≡ sequential ≡ enumeration
    /// oracle on skewed Zipf graphs under all three semantics. The Zipf
    /// exponent matches the bench steal family; 4 workers over a
    /// ~20-label graph forces donations on most seeds.
    #[test]
    fn work_stealing_matches_oracle_on_skewed_zipf(seed in 0u64..100_000) {
        let mut g = generators::zipf_label_graph(36, 140, 20, 1.4, seed);
        let q = crpq::workloads::scaling::steal_query(g.alphabet_mut());
        for sem in Semantics::ALL {
            let oracle = eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate);
            prop_assert_eq!(
                eval_tuples(&q, &g, sem),
                oracle.clone(),
                "sequential vs oracle: seed {} sem {}", seed, sem
            );
            prop_assert_eq!(
                eval_tuples_parallel(&q, &g, sem, 4),
                oracle.clone(),
                "work-stealing vs oracle: seed {} sem {}", seed, sem
            );
            prop_assert_eq!(
                eval_tuples_parallel_static(&q, &g, sem, 4),
                oracle,
                "static vs oracle: seed {} sem {}", seed, sem
            );
        }
    }

    /// Same agreement on a cyclic shape, where the parallel evaluator
    /// descends through the worst-case-optimal join's level candidates
    /// rather than the binary plan's branch chooser.
    #[test]
    fn work_stealing_matches_oracle_on_cyclic_shape(seed in 0u64..100_000) {
        let mut g = generators::random_graph(10, 45, &["a", "b", "c"], seed);
        let q = parse_crpq(
            "(x, z) <- x -[a+b]-> y, y -[b+c]-> z, z -[c a*]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        for sem in Semantics::ALL {
            let oracle = eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate);
            prop_assert_eq!(
                eval_tuples_parallel(&q, &g, sem, 4),
                oracle.clone(),
                "work-stealing vs oracle: seed {} sem {}", seed, sem
            );
            prop_assert_eq!(
                eval_tuples_parallel_static(&q, &g, sem, 4),
                oracle,
                "static vs oracle: seed {} sem {}", seed, sem
            );
        }
    }
}
