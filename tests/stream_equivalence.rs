//! Differential tests for the streaming enumeration API: a collected
//! stream must equal the fully materialised answer set under every
//! semantics and executor (binary join, WCOJ, work-stealing parallel),
//! `eval_limit(k)` must return exactly `min(k, |answers|)` true answers,
//! and `eval_ask` must agree with non-emptiness — the acceptance contract
//! of the streaming-enumeration issue. Plus the consumer-side
//! cancellation path: dropping a stream after a few tuples must wind the
//! producer down without hanging or panicking.

use crpq::core::{
    eval_ask, eval_ask_parallel, eval_ask_with_catalog, eval_limit, eval_limit_parallel,
    eval_limit_with, eval_stream, eval_stream_parallel, eval_stream_with, eval_tuples_with,
    EvalStrategy, RelationCatalog,
};
use crpq::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Collects a stream and sorts it into the canonical `eval_tuples` order.
fn collect_sorted(stream: crpq::core::stream::TupleStream) -> Vec<Vec<NodeId>> {
    let mut tuples: Vec<Vec<NodeId>> = stream.collect();
    tuples.sort();
    tuples
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Stream-collected == materialised for every semantics × executor on
    /// skewed Zipf graphs (the work-stealing bench family).
    #[test]
    fn stream_matches_materialised(seed in 0u64..100_000) {
        let mut g = generators::zipf_label_graph(30, 120, 16, 1.4, seed);
        let q = crpq::workloads::scaling::steal_query(g.alphabet_mut());
        let g = Arc::new(g);
        for sem in Semantics::ALL {
            for strategy in [EvalStrategy::Join, EvalStrategy::BinaryJoin, EvalStrategy::Wcoj] {
                let materialised = eval_tuples_with(&q, &g, sem, strategy);
                let streamed = collect_sorted(eval_stream_with(&q, &g, sem, strategy));
                prop_assert_eq!(
                    streamed, materialised.clone(),
                    "stream vs materialised: seed {} sem {} strategy {:?}", seed, sem, strategy
                );
            }
            let parallel = collect_sorted(eval_stream_parallel(&q, &g, sem, 4));
            prop_assert_eq!(
                parallel, eval_tuples(&q, &g, sem),
                "parallel stream vs materialised: seed {} sem {}", seed, sem
            );
        }
    }

    /// Same agreement on a cyclic (triangle-ish) shape, which routes the
    /// default strategy through the WCOJ executor.
    #[test]
    fn stream_matches_materialised_on_cyclic_shape(seed in 0u64..100_000) {
        let mut g = generators::random_graph(10, 45, &["a", "b", "c"], seed);
        let q = parse_crpq(
            "(x, z) <- x -[a+b]-> y, y -[b+c]-> z, z -[c a*]-> x",
            g.alphabet_mut(),
        )
        .unwrap();
        let g = Arc::new(g);
        for sem in Semantics::ALL {
            let materialised = eval_tuples(&q, &g, sem);
            let streamed = collect_sorted(eval_stream(&q, &g, sem));
            prop_assert_eq!(
                streamed, materialised.clone(),
                "stream vs materialised: seed {} sem {}", seed, sem
            );
            let parallel = collect_sorted(eval_stream_parallel(&q, &g, sem, 4));
            prop_assert_eq!(
                parallel, materialised,
                "parallel stream vs materialised: seed {} sem {}", seed, sem
            );
        }
    }

    /// `eval_ask` (sequential, catalog-backed, parallel) == non-emptiness
    /// of the materialised answer set.
    #[test]
    fn ask_matches_existence(seed in 0u64..100_000) {
        let mut g = generators::random_graph(9, 22, &["a", "b"], seed);
        let q = parse_crpq("(x, y) <- x -[a b*]-> y, y -[b]-> z", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            let exists = !eval_tuples(&q, &g, sem).is_empty();
            prop_assert_eq!(eval_ask(&q, &g, sem), exists, "ask: seed {} sem {}", seed, sem);
            let mut catalog = RelationCatalog::new(&g);
            prop_assert_eq!(
                eval_ask_with_catalog(&q, &g, sem, &mut catalog), exists,
                "ask with catalog: seed {} sem {}", seed, sem
            );
            // Warm catalog: second call must agree too (exercises the
            // cached-relation path of the ASK fast path).
            prop_assert_eq!(
                eval_ask_with_catalog(&q, &g, sem, &mut catalog), exists,
                "warm ask: seed {} sem {}", seed, sem
            );
            prop_assert_eq!(
                eval_ask_parallel(&q, &g, sem, 3), exists,
                "parallel ask: seed {} sem {}", seed, sem
            );
        }
    }

    /// `eval_limit(k)` returns exactly `min(k, |answers|)` distinct true
    /// answers, sorted, under every strategy — including the truncated
    /// `Enumerate` oracle, whose result the join strategies need not
    /// match tuple-for-tuple (any k answers are valid), only set-wise.
    #[test]
    fn limit_returns_k_true_answers(seed in 0u64..100_000) {
        let mut g = generators::zipf_label_graph(24, 90, 8, 1.3, seed);
        let q = parse_crpq("(x, y) <- x -[(l0+l1)(l0+l1+l2)*]-> y", g.alphabet_mut()).unwrap();
        for sem in Semantics::ALL {
            let full = eval_tuples(&q, &g, sem);
            for k in [0usize, 1, 3, full.len(), full.len() + 5] {
                for strategy in [
                    EvalStrategy::Join,
                    EvalStrategy::BinaryJoin,
                    EvalStrategy::Wcoj,
                    EvalStrategy::Enumerate,
                ] {
                    let limited = eval_limit_with(&q, &g, sem, k, strategy);
                    prop_assert_eq!(
                        limited.len(), k.min(full.len()),
                        "limit len: seed {} sem {} k {} strategy {:?}", seed, sem, k, strategy
                    );
                    prop_assert!(
                        limited.iter().all(|t| full.contains(t)),
                        "limit subset: seed {} sem {} k {} strategy {:?}", seed, sem, k, strategy
                    );
                    let mut sorted = limited.clone();
                    sorted.sort();
                    prop_assert_eq!(limited, sorted, "limit output must be sorted");
                }
                let limited = eval_limit_parallel(&q, &g, sem, k, 3);
                prop_assert_eq!(limited.len(), k.min(full.len()));
                prop_assert!(limited.iter().all(|t| full.contains(t)));
            }
        }
    }
}

/// Dropping a stream after two tuples cancels the producer: no hang, no
/// panic, and the tuples received are true (distinct) answers.
#[test]
fn early_drop_cancels_producer() {
    let mut g = generators::zipf_label_graph(60, 360, 6, 1.1, 17);
    let q = parse_crpq("(x, y) <- x -[(l0+l1)(l0+l1+l2)*]-> y", g.alphabet_mut()).unwrap();
    let full = eval_tuples(&q, &g, Semantics::Standard);
    assert!(full.len() > 10, "need a sizeable answer set");
    let g = Arc::new(g);
    for threads in [0usize, 4] {
        let stream = if threads == 0 {
            eval_stream(&q, &g, Semantics::Standard)
        } else {
            eval_stream_parallel(&q, &g, Semantics::Standard, threads)
        };
        let first_two: Vec<Vec<NodeId>> = stream.take(2).collect();
        assert_eq!(first_two.len(), 2);
        assert_ne!(first_two[0], first_two[1], "stream tuples must be distinct");
        assert!(first_two.iter().all(|t| full.contains(t)));
    }
}

/// `eval_limit(1)` agrees with `eval_ask`, and a boolean (arity-0) query
/// streams its single empty tuple.
#[test]
fn boolean_and_singleton_contracts() {
    let mut g = generators::labelled_path(4, &["a"]);
    let q_bool = parse_crpq("x -[a a]-> y", g.alphabet_mut()).unwrap();
    let q_none = parse_crpq("x -[a a a a a a]-> y", g.alphabet_mut()).unwrap();
    let g = Arc::new(g);
    for sem in Semantics::ALL {
        assert!(eval_ask(&q_bool, &g, sem));
        assert_eq!(eval_limit(&q_bool, &g, sem, 1), vec![Vec::new()]);
        assert_eq!(
            collect_sorted(eval_stream(&q_bool, &g, sem)),
            vec![Vec::new()],
            "boolean stream under {sem}"
        );
        assert!(!eval_ask(&q_none, &g, sem));
        assert!(eval_limit(&q_none, &g, sem, 5).is_empty());
        assert!(collect_sorted(eval_stream(&q_none, &g, sem)).is_empty());
    }
}
