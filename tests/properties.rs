//! Property-based tests (proptest) over the whole stack: the regex/NFA/DFA
//! pipeline, the semantics hierarchy, and evaluator agreement.

use crpq::automata::{dfa, Dfa, Nfa, Regex};
use crpq::core::expansion_eval;
use crpq::prelude::*;
use proptest::prelude::*;

/// A strategy for random regexes over `k` symbols with bounded depth.
fn regex_strategy(k: u32) -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        (0..k).prop_map(|i| Regex::Literal(Symbol(i))),
        Just(Regex::Epsilon),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 1..3).prop_map(Regex::alt),
            inner.clone().prop_map(Regex::star),
            inner.clone().prop_map(Regex::plus),
            inner.prop_map(Regex::optional),
        ]
    })
}

fn words_up_to(k: u32, len: usize) -> Vec<Vec<Symbol>> {
    let mut out: Vec<Vec<Symbol>> = vec![Vec::new()];
    let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
    for _ in 0..len {
        let mut next = Vec::new();
        for w in &frontier {
            for s in 0..k {
                let mut w2 = w.clone();
                w2.push(Symbol(s));
                out.push(w2.clone());
                next.push(w2);
            }
        }
        frontier = next;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NFA and DFA accept exactly the same words.
    #[test]
    fn nfa_dfa_language_agreement(r in regex_strategy(2)) {
        let nfa = Nfa::from_regex(&r);
        let alphabet = [Symbol(0), Symbol(1)];
        let dfa = Dfa::from_nfa(&nfa, &alphabet);
        for w in words_up_to(2, 4) {
            prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w), "word {:?}", w);
        }
    }

    /// Minimisation preserves the language and never grows the automaton.
    #[test]
    fn minimisation_sound(r in regex_strategy(2)) {
        let alphabet = [Symbol(0), Symbol(1)];
        let dfa = Dfa::from_nfa(&Nfa::from_regex(&r), &alphabet);
        let min = dfa.minimized();
        prop_assert!(min.num_states() <= dfa.num_states());
        prop_assert!(min.equivalent(&dfa));
    }

    /// `nullable` matches NFA ε-acceptance, star-free implies finite.
    #[test]
    fn regex_structure_predicates(r in regex_strategy(2)) {
        let nfa = Nfa::from_regex(&r);
        prop_assert_eq!(r.nullable(), nfa.accepts_epsilon());
        if r.is_star_free() {
            prop_assert!(nfa.is_finite(), "star-free regex {:?} must be finite", r);
        }
    }

    /// `without_epsilon` removes exactly ε.
    #[test]
    fn epsilon_removal_exact(r in regex_strategy(2)) {
        let nfa = Nfa::from_regex(&r);
        let no_eps = nfa.without_epsilon();
        prop_assert!(!no_eps.accepts_epsilon());
        for w in words_up_to(2, 3) {
            if w.is_empty() { continue; }
            prop_assert_eq!(nfa.accepts(&w), no_eps.accepts(&w), "word {:?}", w);
        }
    }

    /// Shortlex enumeration produces exactly the accepted words.
    #[test]
    fn enumeration_matches_membership(r in regex_strategy(2)) {
        let nfa = Nfa::from_regex(&r);
        let listed: std::collections::HashSet<Vec<Symbol>> =
            nfa.words_up_to(3, usize::MAX).into_iter().collect();
        for w in words_up_to(2, 3) {
            prop_assert_eq!(listed.contains(&w), nfa.accepts(&w), "word {:?}", w);
        }
    }

    /// Language subset decision agrees with word-level sampling.
    #[test]
    fn subset_decision_sound(r1 in regex_strategy(2), r2 in regex_strategy(2)) {
        let alphabet = [Symbol(0), Symbol(1)];
        let (n1, n2) = (Nfa::from_regex(&r1), Nfa::from_regex(&r2));
        let subset = dfa::nfa_subset(&n1, &n2, &alphabet);
        if subset {
            for w in words_up_to(2, 4) {
                prop_assert!(!n1.accepts(&w) || n2.accepts(&w), "violating word {:?}", w);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Semantics-level properties (smaller case counts: evaluation is costlier).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Remark 2.1 on random instances.
    #[test]
    fn hierarchy_always_holds(seed in 0u64..5000) {
        let mut sigma = Interner::new();
        let q = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 3,
                num_atoms: 2,
                alphabet: 2,
                arity: 1,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 5, 10, seed);
        let report = check_hierarchy(&q, &g);
        prop_assert!(report.holds(), "hierarchy violated: {:?}", report);
    }

    /// Direct evaluator ≡ expansion evaluator (Prop 2.2/2.3) on random
    /// finite instances, Boolean case.
    #[test]
    fn evaluators_agree(seed in 0u64..5000) {
        let mut sigma = Interner::new();
        let q = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 2,
                num_atoms: 2,
                alphabet: 2,
                arity: 0,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 4, 9, seed);
        for sem in Semantics::ALL {
            let direct = eval_boolean(&q, &g, sem);
            let via_exp = expansion_eval::eval_contains_complete(&q, &g, &[], sem);
            prop_assert_eq!(direct, via_exp, "seed {} sem {}", seed, sem);
        }
    }

    /// The exact regular-pattern CRPQ/CQ procedure agrees with the
    /// exhaustive counter-example engine on finite single-atom instances.
    #[test]
    fn rpq_cq_matches_naive(seed in 0u64..5000) {
        use crpq::containment::rpq_cq::try_contain_rpq_cq_st;
        let mut sigma = Interner::new();
        let q1 = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 2,
                num_atoms: 1,
                alphabet: 2,
                arity: 0,
                max_word: 3,
            },
            &mut sigma,
            seed,
        );
        let q2 = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::Cq,
                num_vars: 3,
                num_atoms: 2,
                alphabet: 2,
                arity: 0,
                max_word: 1,
            },
            &mut sigma,
            seed + 9000,
        );
        // Skip self-loop left atoms (outside the fragment).
        prop_assume!(q1.atoms[0].src != q1.atoms[0].dst);
        let exact = try_contain_rpq_cq_st(&q1, &q2);
        let naive = contain_with(
            &q1,
            &q2,
            Semantics::Standard,
            ContainmentConfig {
                limits: crpq::query::ExpansionLimits {
                    max_word_len: 6,
                    max_expansions: usize::MAX,
                },
                threads: 1,
            },
        )
        .as_bool();
        if let (Some(e), Some(n)) = (exact, naive) {
            prop_assert_eq!(e, n, "seed {}", seed);
        }
    }

    /// The trail-semantics hierarchy and its cross-link to the
    /// node-injective semantics (§7): q-trail ⊆ a-trail ⊆ st and
    /// a-inj ⊆ a-trail. (`q-inj ⊆ q-trail` is *not* an inclusion under the
    /// disjoint-trails reading: duplicate witness paths break it — found
    /// by this very property test.)
    #[test]
    fn trail_hierarchy_always_holds(seed in 0u64..5000) {
        let mut sigma = Interner::new();
        let q = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 3,
                num_atoms: 2,
                alphabet: 2,
                arity: 1,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 5, 10, seed + 77);
        let st = eval_tuples(&q, &g, Semantics::Standard);
        let a_inj = eval_tuples(&q, &g, Semantics::AtomInjective);
        let q_inj = eval_tuples(&q, &g, Semantics::QueryInjective);
        let a_trail = eval_tuples_trail(&q, &g, TrailSemantics::AtomTrail);
        let q_trail = eval_tuples_trail(&q, &g, TrailSemantics::QueryTrail);
        for t in &q_trail {
            prop_assert!(a_trail.contains(t), "q-trail ⊆ a-trail at {:?}", t);
        }
        for t in &a_trail {
            prop_assert!(st.contains(t), "a-trail ⊆ st at {:?}", t);
        }
        for t in &a_inj {
            prop_assert!(a_trail.contains(t), "a-inj ⊆ a-trail at {:?}", t);
        }
        // q-inj vs q-trail: no inclusion in general — duplicate witness
        // paths are allowed under q-inj (deduplicated expansions) but not
        // under disjoint-trail placement. Document by example rather than
        // asserting an inclusion.
        let _ = q_inj;
    }

    /// Witness extraction is complete and sound: a witness exists exactly
    /// when membership holds, and extracted witnesses pass the independent
    /// verifier.
    #[test]
    fn witnesses_exist_iff_member_and_verify(seed in 0u64..5000) {
        use crpq::core::{eval_witness, verify_witness};
        let mut sigma = Interner::new();
        let q = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::Crpq,
                num_vars: 3,
                num_atoms: 2,
                alphabet: 2,
                arity: 1,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 5, 10, seed + 31);
        for sem in Semantics::ALL {
            for node in g.nodes() {
                let member = eval_contains(&q, &g, &[node], sem);
                let witness = eval_witness(&q, &g, &[node], sem);
                prop_assert_eq!(member, witness.is_some(), "seed {} sem {}", seed, sem);
                if let Some(w) = witness {
                    let verdict = verify_witness(&q, &g, &[node], sem, &w);
                    prop_assert!(verdict.is_ok(), "seed {} sem {}: {:?}", seed, sem, verdict);
                }
            }
        }
    }

    /// The analyzed evaluator (deletion-closed reachability fast path)
    /// agrees with the exact engine on arbitrary CRPQs.
    #[test]
    fn analyzed_evaluator_agrees(seed in 0u64..5000) {
        use crpq::core::eval::{eval_tuples_analyzed};
        let mut sigma = Interner::new();
        let q = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::Crpq,
                num_vars: 3,
                num_atoms: 2,
                alphabet: 2,
                arity: 1,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 5, 10, seed + 13);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples(&q, &g, sem),
                eval_tuples_analyzed(&q, &g, sem),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// PCP well-formedness coincides with solutionhood on random small
    /// instances (equal-length candidates; the padding refinement is the
    /// documented out-of-scope appendix detail).
    #[test]
    fn pcp_wellformedness_tracks_solutions(seed in 0u64..200) {
        use crpq::reductions::pcp::{
            pcp_to_ainj_containment, satisfies_wellformedness, witness_expansion,
        };
        use crpq::reductions::PcpInstance;
        // Two pairs over {a, b}, word lengths 1–2, derived from the seed.
        let mut s = seed;
        let word = |s: &mut u64| {
            *s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let len = 1 + ((*s >> 13) % 2) as usize;
            (0..len).map(|i| if (*s >> (17 + i)) & 1 == 0 { 'a' } else { 'b' }).collect::<String>()
        };
        let inst = PcpInstance {
            pairs: vec![(word(&mut s), word(&mut s)), (word(&mut s), word(&mut s))],
        };
        let mut sigma = Interner::new();
        let red = pcp_to_ainj_containment(&inst, &mut sigma);
        let mut seqs: Vec<Vec<usize>> = Vec::new();
        for a in 0..2 {
            seqs.push(vec![a]);
            for b in 0..2 {
                seqs.push(vec![a, b]);
            }
        }
        for seq in seqs {
            let u_len: usize = seq.iter().map(|&i| inst.pairs[i].0.len()).sum();
            let v_len: usize = seq.iter().map(|&i| inst.pairs[i].1.len()).sum();
            if u_len != v_len {
                continue;
            }
            let cand = witness_expansion(&red, &inst, &seq, false);
            prop_assert_eq!(
                satisfies_wellformedness(&red, &cand),
                inst.is_solution(&seq),
                "instance {:?} sequence {:?}", inst.pairs, seq
            );
        }
    }

    /// Atom minimisation is semantics-preserving: the minimised query gives
    /// the same result set as the original on random databases, under the
    /// semantics it was minimised for.
    #[test]
    fn minimization_preserves_semantics(seed in 0u64..5000) {
        use crpq::containment::optimize::minimize_atoms;
        let mut sigma = Interner::new();
        let q = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 3,
                num_atoms: 3,
                alphabet: 2,
                arity: 1,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        for sem in Semantics::ALL {
            let result = minimize_atoms(&q, sem);
            if result.removed.is_empty() {
                continue;
            }
            let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 5, 11, seed + 7);
            prop_assert_eq!(
                eval_tuples(&q, &g, sem),
                eval_tuples(&result.query, &g, sem),
                "seed {} sem {} removed {:?}", seed, sem, result.removed
            );
        }
    }

    /// Containment is reflexive under every semantics (finite queries).
    #[test]
    fn containment_reflexive(seed in 0u64..5000) {
        let mut sigma = Interner::new();
        let q = crpq::workloads::random::random_query(
            crpq::workloads::random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 2,
                num_atoms: 2,
                alphabet: 2,
                arity: 0,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        for sem in Semantics::ALL {
            prop_assert!(contain(&q, &q, sem).is_contained(), "seed {} sem {}", seed, sem);
        }
    }
}
