//! Edge-case and failure-injection integration tests: degenerate queries
//! and graphs, malformed inputs, and serialisation roundtrips.

use crpq::containment::{contain, Outcome};
use crpq::graph::{format, generators, GraphBuilder, GraphDb};
use crpq::prelude::*;
use crpq::query::parse_crpq as parse_query;

fn graph(edges: &[(&str, &str, &str)]) -> GraphDb {
    let mut b = GraphBuilder::new();
    for &(u, l, v) in edges {
        b.edge(u, l, v);
    }
    b.finish()
}

// ---------------------------------------------------------------- queries

#[test]
fn epsilon_only_query_holds_on_any_nonempty_graph() {
    let mut g = graph(&[("u", "a", "v")]);
    let q = parse_query("x -[a*]-> y, y -[a*]-> x", g.alphabet_mut()).unwrap();
    for sem in Semantics::ALL {
        assert!(
            eval_boolean(&q, &g, sem),
            "ε-collapse variant must fire under {sem}"
        );
    }
    // … but not on the empty graph.
    let empty = GraphBuilder::new().finish();
    for sem in Semantics::ALL {
        assert!(!eval_boolean(&q, &empty, sem));
    }
}

#[test]
fn disconnected_query_evaluates_per_component() {
    let mut g = graph(&[("u", "a", "v"), ("p", "b", "r")]);
    let q = parse_query("x -[a]-> y, z -[b]-> w", g.alphabet_mut()).unwrap();
    assert!(!q.is_connected());
    for sem in Semantics::ALL {
        assert!(
            eval_boolean(&q, &g, sem),
            "components satisfied separately under {sem}"
        );
    }
    // q-inj additionally needs the four images distinct — force a clash.
    let mut g2 = graph(&[("u", "a", "v"), ("u", "b", "v")]);
    let q2 = parse_query("x -[a]-> y, z -[b]-> w", g2.alphabet_mut()).unwrap();
    assert!(eval_boolean(&q2, &g2, Semantics::Standard));
    assert!(eval_boolean(&q2, &g2, Semantics::AtomInjective));
    assert!(
        !eval_boolean(&q2, &g2, Semantics::QueryInjective),
        "two nodes cannot host four distinct variable images"
    );
}

#[test]
fn repeated_free_variables_constrain_tuples() {
    let mut g = graph(&[("u", "a", "u"), ("u", "a", "v")]);
    let q = parse_query("(x, x) <- x -[a]-> x", g.alphabet_mut()).unwrap();
    let u = g.node_by_name("u").unwrap();
    let v = g.node_by_name("v").unwrap();
    assert!(eval_contains(&q, &g, &[u, u], Semantics::Standard));
    assert!(
        !eval_contains(&q, &g, &[u, v], Semantics::Standard),
        "repeated frees must agree"
    );
}

#[test]
fn zero_atom_query_is_always_true() {
    let mut g = graph(&[("u", "a", "v")]);
    let q = parse_query("(x) <- true", g.alphabet_mut()).unwrap();
    for sem in Semantics::ALL {
        assert_eq!(eval_tuples(&q, &g, sem).len(), g.num_nodes());
    }
}

#[test]
fn containment_with_empty_language_left_is_vacuous() {
    let mut sigma = Interner::new();
    let q1 = parse_query("(x, y) <- x -[∅]-> y", &mut sigma).unwrap();
    let q2 = parse_query("(x, y) <- x -[a]-> y", &mut sigma).unwrap();
    for sem in Semantics::ALL {
        assert!(
            contain(&q1, &q2, sem).is_contained(),
            "no expansions on the left means vacuous containment under {sem}"
        );
    }
}

#[test]
fn containment_outcome_three_valuedness() {
    let mut sigma = Interner::new();
    // Infinite LHS vs unrelated RHS: refuted with a concrete witness.
    let q1 = parse_query("(x, y) <- x -[a a*]-> y", &mut sigma).unwrap();
    let q2 = parse_query("(x, y) <- x -[b]-> y", &mut sigma).unwrap();
    match contain(&q1, &q2, Semantics::Standard) {
        Outcome::NotContained(c) => {
            assert!(!c.profile.is_empty());
        }
        other => panic!("expected refutation, got {other:?}"),
    }
}

// ----------------------------------------------------------------- parsing

#[test]
fn malformed_regexes_error_not_panic() {
    let mut sigma = Interner::new();
    for bad in ["(a", "a)", "+", "a +", "* a", "()", "a + + b", "(a))("] {
        assert!(
            crpq::automata::parse_regex(bad, &mut sigma).is_err(),
            "regex {bad:?} must be rejected"
        );
    }
}

#[test]
fn malformed_queries_error_not_panic() {
    let mut sigma = Interner::new();
    for bad in [
        "",
        "x -[a]->",
        "-[a]-> y",
        "x -[]-> y",
        "x -[(a]-> y",
        "(x, <- x -[a]-> y",
        "x -a-> y -b-> z",
    ] {
        assert!(
            parse_query(bad, &mut sigma).is_err(),
            "query {bad:?} must be rejected"
        );
    }
    // An empty body after `<-` is the 0-atom (always-true) query by design.
    let q = parse_query("(x) <-", &mut sigma).unwrap();
    assert_eq!(q.atoms.len(), 0);
    assert_eq!(q.free.len(), 1);
}

#[test]
fn malformed_graph_text_errors() {
    for bad in ["u a", "u a v w"] {
        assert!(
            format::parse_graph_text(bad).is_err(),
            "graph text {bad:?} must be rejected"
        );
    }
    // Node names are free-form tokens: this parses as an edge "->" -x-> "y".
    let odd = format::parse_graph_text("-> x y").unwrap();
    assert_eq!(odd.num_edges(), 1);
}

// ------------------------------------------------------------- roundtrips

#[test]
fn graph_text_roundtrip() {
    for g in [
        graph(&[("u", "a", "v"), ("v", "b", "w"), ("w", "c", "v")]),
        generators::grid(3, 3, "right", "down"),
        generators::clique(4, "e"),
    ] {
        let text = format::to_graph_text(&g).unwrap();
        let back = format::parse_graph_text(&text).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
        for (u, sym, v) in g.edges() {
            let label = g.alphabet().resolve(sym);
            let (bu, bv) = (
                back.node_by_name(g.node_name(u)).unwrap(),
                back.node_by_name(g.node_name(v)).unwrap(),
            );
            let bsym = back.alphabet().get(label).unwrap();
            assert!(
                back.has_edge(bu, bsym, bv),
                "edge {u:?}-{label}->{v:?} lost"
            );
        }
    }
}

#[test]
fn graph_binary_roundtrip() {
    for g in [
        graph(&[("u", "a", "v"), ("v", "b", "w")]),
        generators::random_graph(12, 30, &["a", "b", "c"], 7),
    ] {
        let bin = format::to_binary(&g);
        let back = format::from_binary(bin).unwrap();
        assert_eq!(back.num_nodes(), g.num_nodes());
        assert_eq!(back.num_edges(), g.num_edges());
    }
}

#[test]
fn corrupt_binary_snapshots_error() {
    let g = graph(&[("u", "a", "v")]);
    let bin = format::to_binary(&g);
    // Truncations must fail loudly, not panic.
    for cut in [0, 1, bin.len() / 2, bin.len().saturating_sub(1)] {
        let slice = bin.slice(0..cut);
        assert!(
            format::from_binary(slice).is_err(),
            "truncated snapshot (len {cut}) must be rejected"
        );
    }
}

// ------------------------------------------------------ semantics corners

#[test]
fn parallel_edges_with_distinct_labels() {
    // Both labels between the same pair: path search must consider both.
    let mut g = graph(&[("u", "a", "v"), ("u", "b", "v"), ("v", "a", "w")]);
    let q = parse_query("(x, y) <- x -[b a]-> y", g.alphabet_mut()).unwrap();
    let (u, w) = (g.node_by_name("u").unwrap(), g.node_by_name("w").unwrap());
    for sem in Semantics::ALL {
        assert!(
            eval_contains(&q, &g, &[u, w], sem),
            "b·a path exists under {sem}"
        );
    }
}

#[test]
fn simple_cycle_excludes_shorter_revisits() {
    // A 3-cycle with a chord: x -[a a a]-> x needs the full triangle.
    let mut g = graph(&[
        ("u", "a", "v"),
        ("v", "a", "w"),
        ("w", "a", "u"),
        ("v", "a", "u"),
    ]);
    let q3 = parse_query("x -[a a a]-> x", g.alphabet_mut()).unwrap();
    let q2 = parse_query("x -[a a]-> x", g.alphabet_mut()).unwrap();
    assert!(eval_boolean(&q3, &g, Semantics::AtomInjective));
    assert!(
        eval_boolean(&q2, &g, Semantics::AtomInjective),
        "u→v→u chord 2-cycle"
    );
    // Length-4 simple cycles do not exist in this graph.
    let q4 = parse_query("x -[a a a a]-> x", g.alphabet_mut()).unwrap();
    assert!(!eval_boolean(&q4, &g, Semantics::AtomInjective));
    assert!(
        eval_boolean(&q4, &g, Semantics::Standard),
        "walk may repeat"
    );
}

#[test]
fn witness_roundtrip_on_generated_workloads() {
    use crpq::core::{eval_witness, verify_witness};
    let mut sigma = Interner::new();
    let g = crpq::workloads::random::random_graph_for(&mut sigma, 3, 8, 20, 42);
    let q = crpq::workloads::random::random_query(
        crpq::workloads::random::RandomQueryParams {
            class: QueryClass::Crpq,
            num_vars: 3,
            num_atoms: 2,
            alphabet: 3,
            arity: 2,
            max_word: 2,
        },
        &mut sigma,
        42,
    );
    for sem in Semantics::ALL {
        for t in eval_tuples(&q, &g, sem) {
            let w = eval_witness(&q, &g, &t, sem).expect("member tuple must have witness");
            verify_witness(&q, &g, &t, sem, &w).expect("witness must verify");
        }
    }
}
