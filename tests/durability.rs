//! Crash-matrix tests for the durability layer (`crpq_graph::wal`).
//!
//! The harness runs a ≥100-mutation schedule through a [`DurableGraph`]
//! over deterministic [`FaultyStorage`], records the graph state after
//! every logged record, then simulates a crash at **every record
//! boundary**, at **sampled mid-record offsets**, and with **bit-flipped
//! tails** — and asserts recovery lands on exactly the legal mutation
//! prefix the surviving bytes encode (differentially checked against a
//! from-scratch rebuild under all three semantics). Corruption *behind*
//! durable records must instead be a hard error naming the byte offset.
//!
//! It also proptests the sync-policy loss bounds (`Always` loses at most
//! the in-flight record, `EveryN` at most the last un-synced group),
//! validates the harness's own teeth against seeded durability mutants
//! (skip the fsync, skip the rename, skip the tail-CRC check — each must
//! fail the matrix), and checks catalog rehydration after recovery.
//! The invariants live in `DURABILITY.md` (D1–D6).

use crpq::core::{eval_tuples, eval_tuples_with_catalog, RelationCatalog, Semantics};
use crpq::graph::wal::{
    frame_boundaries, DurabilityMutants, DurableGraph, EdgeMutation, SyncPolicy,
};
use crpq::prelude::*;
use crpq::util::storage::{FaultPlan, FaultyStorage, Storage};
use proptest::prelude::*;

const SNAP: &str = "snap";
const WAL: &str = "wal";
/// Matrix sync policy: non-trivial group commit (see the loss-bound
/// proptests for `Always`/`Never`).
const POLICY: SyncPolicy = SyncPolicy::EveryN(8);

/// Deterministic splitmix64 — crash schedules must be reproducible from
/// the seed alone (no ambient entropy).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

fn base_graph(seed: u64) -> (Crpq, GraphDb, Vec<Symbol>) {
    let mut base = generators::random_graph(12, 36, &["a", "b", "c"], seed);
    let q = parse_crpq(
        "(x, y) <- x -[(a+b)b*]-> y, y -[c]-> z",
        base.alphabet_mut(),
    )
    .unwrap();
    let syms: Vec<Symbol> = ["a", "b", "c"]
        .iter()
        .map(|l| base.alphabet_mut().intern(l))
        .collect();
    (q, base, syms)
}

fn edge_set(g: &DeltaGraph) -> Vec<(u32, u32, u32)> {
    let mut out = Vec::new();
    for v in 0..GraphView::num_nodes(g) {
        let v = NodeId(v as u32);
        for (l, t) in g.out_edges_iter(v) {
            out.push((v.0, l.0, t.0));
        }
    }
    out.sort_unstable();
    out
}

/// Rebuild a frozen snapshot from the view (dense ids preserved), so the
/// recovered overlay can be differentially evaluated against plain CSR.
fn rebuild(g: &DeltaGraph) -> GraphDb {
    let mut b = GraphBuilder::anonymous_with_alphabet(
        GraphView::num_nodes(g),
        GraphView::alphabet(g).clone(),
    );
    for v in 0..GraphView::num_nodes(g) {
        let v = NodeId(v as u32);
        for (l, t) in g.out_edges_iter(v) {
            b.edge_ids(v, l, t);
        }
    }
    b.finish()
}

/// The golden run: checkpoint bytes, the full WAL image, and the graph
/// state after each of the `states.len() - 1` logged records.
struct Golden {
    snap: Vec<u8>,
    wal: Vec<u8>,
    states: Vec<Vec<(u32, u32, u32)>>,
}

/// Drive `ops` seeded mutations through a fresh durable graph, recording
/// the state after every *logged* record (no-op mutations log nothing).
fn golden_run(seed: u64, ops: usize, policy: SyncPolicy) -> Golden {
    let (_, base, syms) = base_graph(seed);
    let mut d = DurableGraph::create_with(FaultyStorage::new(), SNAP, WAL, base, policy).unwrap();
    let snap = d.storage_mut().read(SNAP).unwrap();
    let n = GraphView::num_nodes(d.graph());
    let mut states = vec![edge_set(d.graph())];
    let mut rng = Rng(seed ^ 0x5EED);
    for _ in 0..ops {
        let u = NodeId(rng.below(n) as u32);
        let v = NodeId(rng.below(n) as u32);
        let l = syms[rng.below(syms.len())];
        let before = d.records_since_checkpoint();
        if rng.below(10) < 6 {
            d.insert_edge(u, l, v).unwrap();
        } else {
            d.delete_edge(u, l, v).unwrap();
        }
        if d.records_since_checkpoint() > before {
            states.push(edge_set(d.graph()));
        }
    }
    d.sync_wal().unwrap();
    let mut storage = d.into_storage();
    let wal = storage.read(WAL).unwrap();
    Golden { snap, wal, states }
}

/// The matrix check: install `wal_image` next to the golden checkpoint,
/// recover, and verify prefix-consistency — the recovered graph must
/// equal the state after exactly `report.replayed` logged records, with
/// `replayed` matching `expect_exact` (when pinned) and at least
/// `min_records` (the sync-watermark loss bound). With `differential`,
/// the recovered overlay is also evaluated under all three semantics
/// against a from-scratch rebuild of the same prefix. Returns the number
/// of replayed records; any violation (including an unexpected hard
/// recovery error) is an `Err`, which the mutant tests assert on.
fn recover_and_check(
    golden: &Golden,
    q: &Crpq,
    wal_image: &[u8],
    expect_exact: Option<usize>,
    min_records: usize,
    differential: bool,
    mutants: DurabilityMutants,
) -> Result<usize, String> {
    let mut storage = FaultyStorage::new();
    storage.install(SNAP, &golden.snap);
    storage.install(WAL, wal_image);
    let (d, report) = DurableGraph::open_with_mutants(storage, SNAP, WAL, POLICY, mutants)
        .map_err(|e| format!("unexpected hard recovery error: {e}"))?;
    let p = report.replayed;
    if p >= golden.states.len() {
        return Err(format!(
            "recovered {p} records but the schedule logged {}",
            golden.states.len() - 1
        ));
    }
    let got = edge_set(d.graph());
    if got != golden.states[p] {
        return Err(format!(
            "recovered state does not equal the {p}-record mutation prefix"
        ));
    }
    if let Some(exact) = expect_exact {
        if p != exact {
            return Err(format!("recovered {p} records, expected exactly {exact}"));
        }
    }
    if p < min_records {
        return Err(format!(
            "durable records lost: recovered {p} < sync watermark {min_records}"
        ));
    }
    if differential {
        let frozen = rebuild(d.graph());
        for sem in Semantics::ALL {
            let got = eval_tuples(q, d.graph(), sem);
            let want = eval_tuples(q, &frozen, sem);
            if got != want {
                return Err(format!(
                    "recovered overlay diverges from the prefix rebuild under {sem}"
                ));
            }
        }
    }
    Ok(p)
}

/// D1 + D3: crash at every record boundary, at sampled mid-record
/// offsets, and with bit-flipped tails — recovery always lands on the
/// legal prefix the surviving bytes encode and never panics or
/// hard-errors; mid-log bit flips (durable data damaged) are hard errors
/// naming the byte offset.
#[test]
fn crash_matrix_boundaries_midpoints_and_flipped_tails() {
    let seed = 0x00D0_0DAD;
    let golden = golden_run(seed, 240, POLICY);
    let (q, _, _) = base_graph(seed);
    let records = golden.states.len() - 1;
    assert!(
        records >= 100,
        "need a ≥100-mutation schedule, got {records}"
    );
    let frames = frame_boundaries(&golden.wal);
    // frames = [0, header_end, record_1_end, ..., record_R_end]
    assert_eq!(frames.len(), records + 2, "frame walk must cover the log");
    assert_eq!(*frames.last().unwrap(), golden.wal.len());

    // (a) Every record boundary: the prefix recovers exactly, cleanly.
    for (i, &b) in frames.iter().enumerate() {
        let expected = i.saturating_sub(1);
        recover_and_check(
            &golden,
            &q,
            &golden.wal[..b],
            Some(expected),
            0,
            i % 5 == 0,
            DurabilityMutants::default(),
        )
        .unwrap_or_else(|e| panic!("boundary {i} (byte {b}): {e}"));
    }

    // (b) Sampled mid-record offsets: the torn tail is dropped and only
    // complete records replay.
    let mut rng = Rng(seed ^ 0x7EA4);
    for t in 0..60 {
        let cut = 1 + rng.below(golden.wal.len() - 1);
        let expected = frames[2..].iter().filter(|&&e| e <= cut).count();
        recover_and_check(
            &golden,
            &q,
            &golden.wal[..cut],
            Some(expected),
            0,
            t % 5 == 0,
            DurabilityMutants::default(),
        )
        .unwrap_or_else(|e| panic!("mid-record cut at byte {cut}: {e}"));
    }

    // (c) Bit-flipped tails: flip any bit anywhere in the final record
    // (length prefix, payload, or checksum) — the record is dropped, the
    // prefix before it recovers.
    for t in 0..40 {
        let k = 2 + rng.below(frames.len() - 2);
        let (start, end) = (frames[k - 1], frames[k]);
        let mut img = golden.wal[..end].to_vec();
        let byte = start + rng.below(end - start);
        img[byte] ^= 1 << (rng.below(8) as u32);
        recover_and_check(
            &golden,
            &q,
            &img,
            Some(k - 2),
            0,
            t % 5 == 0,
            DurabilityMutants::default(),
        )
        .unwrap_or_else(|e| panic!("tail flip at byte {byte} of {end}: {e}"));
    }

    // (d) Mid-log bit flips — durable records damaged behind later valid
    // ones: a hard, reported error naming the byte offset, never a panic
    // and never a silent truncation.
    for _ in 0..40 {
        let k = 2 + rng.below(frames.len() - 3); // never the final record
        let (start, end) = (frames[k - 1], frames[k]);
        let byte = start + rng.below(end - start);
        let mut storage = FaultyStorage::new();
        storage.install(SNAP, &golden.snap);
        storage.install(WAL, &golden.wal);
        storage.flip_bit(WAL, byte, (byte % 8) as u32);
        match DurableGraph::open_with_mutants(
            storage,
            SNAP,
            WAL,
            POLICY,
            DurabilityMutants::default(),
        ) {
            Err(e) => {
                assert!(e.offset.is_some(), "positional error expected: {e}");
                assert!(e.to_string().contains("byte offset"), "{e}");
            }
            Ok((_, report)) => panic!(
                "mid-log flip at byte {byte} (record {}) silently recovered: {report:?}",
                k - 1
            ),
        }
    }
}

/// D2 (drop-unsynced matrix): crash after every op count with all
/// un-synced bytes lost — recovery must land exactly on the sync
/// watermark, under the policy's loss bound. Exercises the same schedule
/// as the boundary matrix, live.
#[test]
fn crash_matrix_drop_unsynced_lands_on_sync_watermark() {
    let seed = 0x0BAD_5EED;
    let n_policy = 8usize;
    for crash_after in (0..=120).step_by(7) {
        let (_, base, syms) = base_graph(seed);
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(),
            SNAP,
            WAL,
            base,
            SyncPolicy::EveryN(n_policy),
        )
        .unwrap();
        let n = GraphView::num_nodes(d.graph());
        let mut rng = Rng(seed ^ 0x5EED);
        let mut states = vec![edge_set(d.graph())];
        for _ in 0..crash_after {
            let u = NodeId(rng.below(n) as u32);
            let v = NodeId(rng.below(n) as u32);
            let l = syms[rng.below(syms.len())];
            let logged = d.records_since_checkpoint();
            if rng.below(10) < 6 {
                d.insert_edge(u, l, v).unwrap();
            } else {
                d.delete_edge(u, l, v).unwrap();
            }
            if d.records_since_checkpoint() > logged {
                states.push(edge_set(d.graph()));
            }
        }
        let logged = d.records_since_checkpoint();
        let watermark = logged - logged % n_policy;
        let mut storage = d.into_storage();
        storage.crash_drop_unsynced();
        let (d2, report) =
            DurableGraph::open_with(storage, SNAP, WAL, SyncPolicy::EveryN(n_policy)).unwrap();
        assert_eq!(
            report.replayed, watermark,
            "crash after {crash_after} ops: recovery must land on the sync watermark"
        );
        assert_eq!(
            edge_set(d2.graph()),
            states[watermark],
            "crash after {crash_after} ops: wrong prefix state"
        );
    }
}

/// D4: compaction is crash-safe at every storage-op window. Injecting a
/// crash at each op index through a mutate → compact → mutate schedule,
/// then recovering, must always land on a legal prefix — and with
/// `SyncPolicy::Always`, on a state at least as new as every completed
/// mutation (the checkpoint swap loses nothing).
#[test]
fn crash_matrix_compaction_windows() {
    let seed = 0xC0_3BA2;
    // Dry run: count storage ops for the full schedule.
    let total_ops = {
        let mut d = run_compaction_schedule(seed, None).expect("dry run cannot crash");
        d.storage_mut().ops()
    };
    assert!(total_ops > 20, "schedule too small to matter: {total_ops}");
    for crash_at in 0..total_ops {
        // The run crashes at storage-op `crash_at`; completed mutations
        // before the crash are tracked by the schedule driver. `allowance`
        // is 1 when the crash tore a mutation in flight (its append may or
        // may not have landed — both outcomes are legal), 0 otherwise.
        let (mut storage, completed_states, allowance) =
            match run_compaction_schedule(seed, Some(crash_at)) {
                Ok(mut d) => {
                    let states = d.take_states();
                    (d.into_storage(), states, 0)
                }
                Err((storage, states, allowance)) => (storage, states, allowance),
            };
        storage.crash_keep_written();
        let (d2, _report) = DurableGraph::open_with(storage, SNAP, WAL, SyncPolicy::Always)
            .unwrap_or_else(|e| panic!("crash at storage op {crash_at}: recovery failed: {e}"));
        let got = edge_set(d2.graph());
        // Prefix-consistency: the recovered state is one of the completed
        // states…
        let pos = completed_states.iter().position(|s| s == &got);
        let pos = pos.unwrap_or_else(|| {
            panic!("crash at storage op {crash_at}: recovered state is not a legal prefix")
        });
        // …and under Always with keep-written semantics, nothing completed
        // is lost: only the op in flight at the crash may be missing.
        assert!(
            pos + 1 + allowance >= completed_states.len(),
            "crash at storage op {crash_at}: durable mutations lost \
             (recovered prefix {pos} of {}, allowance {allowance})",
            completed_states.len() - 1
        );
    }
}

/// Driver for [`crash_matrix_compaction_windows`]: mutate, compact
/// mid-way, mutate again, under `SyncPolicy::Always`. Returns the live
/// graph (no crash) or the storage + completed-state log at the injected
/// crash.
struct ScheduleRun {
    d: DurableGraph<FaultyStorage>,
    states: Vec<Vec<(u32, u32, u32)>>,
}

impl ScheduleRun {
    fn storage_mut(&mut self) -> &mut FaultyStorage {
        self.d.storage_mut()
    }
    fn into_storage(self) -> FaultyStorage {
        self.d.into_storage()
    }
    fn take_states(&mut self) -> Vec<Vec<(u32, u32, u32)>> {
        std::mem::take(&mut self.states)
    }
}

#[allow(clippy::type_complexity, clippy::result_large_err)]
fn run_compaction_schedule(
    seed: u64,
    crash_at: Option<u64>,
) -> Result<ScheduleRun, (FaultyStorage, Vec<Vec<(u32, u32, u32)>>, usize)> {
    let (_, base, syms) = base_graph(seed);
    let storage = match crash_at {
        Some(n) => FaultyStorage::with_plan(FaultPlan {
            crash_after_ops: Some(n),
            ..FaultPlan::default()
        }),
        None => FaultyStorage::new(),
    };
    // `create` itself performs storage ops and can crash under the plan.
    let mut d =
        match DurableGraph::create_with(storage, SNAP, WAL, base.clone(), SyncPolicy::Always) {
            Ok(d) => d,
            Err(_) => {
                // Crashed during initialisation: re-run creation honestly to
                // get a baseline disk, then replay the crash onto it. An
                // init-window crash is equivalent to an op-0 crash on an
                // initialised store for prefix purposes, so just report the
                // base state as the only legal prefix over an honest disk.
                let honest = DurableGraph::create_with(
                    FaultyStorage::new(),
                    SNAP,
                    WAL,
                    base,
                    SyncPolicy::Always,
                )
                .unwrap();
                let state = edge_set(honest.graph());
                return Err((honest.into_storage(), vec![state], 0));
            }
        };
    let n = GraphView::num_nodes(d.graph());
    let mut states = vec![edge_set(d.graph())];
    let mut rng = Rng(seed ^ 0xFACE);
    for step in 0..30 {
        let u = NodeId(rng.below(n) as u32);
        let v = NodeId(rng.below(n) as u32);
        let l = syms[rng.below(syms.len())];
        let res = if rng.below(10) < 6 {
            d.insert_edge(u, l, v)
        } else {
            d.delete_edge(u, l, v)
        };
        match res {
            Ok(true) => states.push(edge_set(d.graph())),
            Ok(false) => {}
            Err(_) => {
                // The crash tore this mutation between graph-apply and
                // WAL durability: the in-memory (post-op) state is legal
                // iff its append landed, the prior state iff it didn't.
                states.push(edge_set(d.graph()));
                return Err((d.into_storage(), states, 1));
            }
        }
        if step == 14 || step == 24 {
            if let Err(_e) = d.compact() {
                return Err((d.into_storage(), states, 0));
            }
        }
    }
    Ok(ScheduleRun { d, states })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// D2 (`Always`): after any completed mutation, a crash that drops all
    /// un-synced bytes loses nothing — every completed record was synced —
    /// and a crash tearing the in-flight append loses at most that one
    /// record.
    #[test]
    fn sync_always_loses_at_most_the_in_flight_record(seed in 0u64..100_000) {
        let ops = 20 + (seed as usize % 40);
        let golden = golden_run(seed, ops, SyncPolicy::Always);
        let (q, _, _) = base_graph(seed);
        let records = golden.states.len() - 1;
        // Completed mutations are all durable.
        recover_and_check(
            &golden, &q, &golden.wal, Some(records), records, true,
            DurabilityMutants::default(),
        ).unwrap();

        // Tear the in-flight (last) record at a seeded byte: at most that
        // record is lost.
        let frames = frame_boundaries(&golden.wal);
        let (start, end) = (frames[frames.len() - 2], frames[frames.len() - 1]);
        let cut = start + 1 + (seed as usize % (end - start - 1));
        recover_and_check(
            &golden, &q, &golden.wal[..cut], Some(records - 1), records - 1, true,
            DurabilityMutants::default(),
        ).unwrap();
    }

    /// D2 (`EveryN`): a drop-unsynced crash loses at most the last
    /// un-synced group — recovery lands exactly on the last sync
    /// watermark.
    #[test]
    fn sync_every_n_loses_at_most_the_last_group(seed in 0u64..100_000) {
        let n_policy = 2 + (seed as usize % 7);
        let ops = 25 + (seed as usize % 35);
        let (_, base, syms) = base_graph(seed);
        let mut d = DurableGraph::create_with(
            FaultyStorage::new(), SNAP, WAL, base, SyncPolicy::EveryN(n_policy),
        ).unwrap();
        let n = GraphView::num_nodes(d.graph());
        let mut rng = Rng(seed ^ 0x5EED);
        let mut states = vec![edge_set(d.graph())];
        for _ in 0..ops {
            let u = NodeId(rng.below(n) as u32);
            let v = NodeId(rng.below(n) as u32);
            let l = syms[rng.below(syms.len())];
            let logged = d.records_since_checkpoint();
            if rng.below(10) < 6 {
                d.insert_edge(u, l, v).unwrap();
            } else {
                d.delete_edge(u, l, v).unwrap();
            }
            if d.records_since_checkpoint() > logged {
                states.push(edge_set(d.graph()));
            }
        }
        let logged = d.records_since_checkpoint();
        let watermark = logged - logged % n_policy;
        let mut storage = d.into_storage();
        storage.crash_drop_unsynced();
        let (d2, report) = DurableGraph::open_with(
            storage, SNAP, WAL, SyncPolicy::EveryN(n_policy),
        ).unwrap();
        prop_assert_eq!(report.replayed, watermark);
        prop_assert!(logged - report.replayed < n_policy, "lost a full group");
        prop_assert_eq!(&edge_set(d2.graph()), &states[watermark]);
    }
}

// ---- D5: the harness's own teeth. Each seeded durability mutant below
// re-creates a classic WAL implementation bug; the crash matrix must
// fail (return Err / recover a wrong state), proving the harness would
// catch the bug in CI. Mirrors the PR 9 `model_mutant_*` pattern. ----

/// Shared scenario for the fsync/rename mutants: mutate, compact, mutate
/// again under `SyncPolicy::Always` on a storage with `plan`, crash with
/// all un-synced bytes dropped, recover, and check the final state
/// survived. Honest storage passes; each mutant must fail.
fn post_crash_state_is_complete(plan: FaultPlan) -> Result<(), String> {
    let seed = 0x3141_5926;
    let (_, base, syms) = base_graph(seed);
    let mut d =
        DurableGraph::create_with(FaultyStorage::new(), SNAP, WAL, base, SyncPolicy::Always)
            .map_err(|e| e.to_string())?;
    // The mutant plan arms *after* an honest init so the scenario tests
    // steady-state durability, not store creation.
    d.storage_mut().set_plan(plan);
    let n = GraphView::num_nodes(d.graph());
    let mut rng = Rng(seed ^ 0xABBA);
    for step in 0..24 {
        let u = NodeId(rng.below(n) as u32);
        let v = NodeId(rng.below(n) as u32);
        let l = syms[rng.below(syms.len())];
        if rng.below(10) < 6 {
            d.insert_edge(u, l, v).map_err(|e| e.to_string())?;
        } else {
            d.delete_edge(u, l, v).map_err(|e| e.to_string())?;
        }
        if step == 11 {
            d.compact().map_err(|e| e.to_string())?;
        }
    }
    let want = edge_set(d.graph());
    let mut storage = d.into_storage();
    storage.crash_drop_unsynced();
    let (d2, _) = DurableGraph::open_with(storage, SNAP, WAL, SyncPolicy::Always)
        .map_err(|e| format!("recovery failed: {e}"))?;
    if edge_set(d2.graph()) != want {
        return Err("completed, fsynced mutations did not survive the crash".to_string());
    }
    Ok(())
}

/// Sanity: the scenario passes on honest storage — so a mutant failing it
/// is the mutant's fault, not the scenario's.
#[test]
fn mutant_scenario_passes_on_honest_storage() {
    post_crash_state_is_complete(FaultPlan::default()).unwrap();
}

/// Skip-the-fsync mutant: `sync` reports success without making bytes
/// durable. The drop-unsynced crash then loses fsynced-and-acknowledged
/// records — the matrix must notice.
#[test]
fn mutant_skip_fsync_is_caught() {
    let err = post_crash_state_is_complete(FaultPlan {
        skip_sync: true,
        ..FaultPlan::default()
    })
    .expect_err("the skip-fsync mutant must fail the crash matrix");
    assert!(err.contains("did not survive"), "{err}");
}

/// Skip-the-rename mutant: the checkpoint's atomic publish rename is
/// silently dropped, so after compaction the snapshot on disk is stale
/// while the WAL was already truncated — recovery silently rolls back to
/// the old checkpoint. The matrix must notice the lost mutations.
#[test]
fn mutant_skip_rename_is_caught() {
    let err = post_crash_state_is_complete(FaultPlan {
        skip_renames_to: Some(SNAP.to_string()),
        ..FaultPlan::default()
    })
    .expect_err("the skip-rename mutant must fail the crash matrix");
    assert!(err.contains("did not survive"), "{err}");
}

/// Skip-the-tail-CRC mutant: recovery accepts the final record without
/// verifying its checksum, so a bit-flipped tail is *applied* instead of
/// dropped — the recovered graph is not a legal prefix. At least one
/// seeded tail flip must be caught by the matrix check.
#[test]
fn mutant_skip_tail_crc_is_caught() {
    let seed = 0x7A1_1C2C;
    let golden = golden_run(seed, 120, POLICY);
    let (q, _, _) = base_graph(seed);
    let frames = frame_boundaries(&golden.wal);
    let (start, end) = (frames[frames.len() - 2], frames[frames.len() - 1]);
    let mutants = DurabilityMutants {
        skip_tail_crc: true,
    };
    let mut caught = 0usize;
    let mut tried = 0usize;
    // Flip every payload bit of the final record in turn; under the
    // mutant the corrupt record is applied and the matrix check (which
    // expects the flip to be dropped) must fail for at least one flip.
    for byte in (start + 4)..(end - 4) {
        for bit in 0..8 {
            let mut img = golden.wal[..end].to_vec();
            img[byte] ^= 1 << bit;
            tried += 1;
            let expected = frames.len() - 3; // tail dropped under honest recovery
            if recover_and_check(&golden, &q, &img, Some(expected), 0, false, mutants).is_err() {
                caught += 1;
            }
        }
    }
    assert!(tried >= 100, "tail record too small to exercise: {tried}");
    assert!(
        caught > tried / 2,
        "the skip-tail-crc mutant evaded the matrix on {caught}/{tried} flips"
    );
    // Control: with honest recovery every one of those flips is tolerated
    // (dropped tail), so the failures above are the mutant's doing.
    for byte in (start + 4)..(end - 4) {
        let mut img = golden.wal[..end].to_vec();
        img[byte] ^= 1;
        recover_and_check(
            &golden,
            &q,
            &img,
            Some(frames.len() - 3),
            0,
            false,
            DurabilityMutants::default(),
        )
        .unwrap_or_else(|e| panic!("honest recovery must tolerate the flipped tail: {e}"));
    }
}

/// D6: catalog rehydration after recovery — a recovered process replays
/// the WAL's label footprint into a warm catalog, evicting exactly the
/// footprint-matching entries, and then answers exactly like a cold
/// catalog.
#[test]
fn recovered_catalog_rebuilds_footprint_correct_state() {
    let mut base = generators::random_graph(10, 30, &["a", "b", "c"], 7);
    let q_ab = parse_crpq("(x, y) <- x -[a b*]-> y", base.alphabet_mut()).unwrap();
    let q_c = parse_crpq("(x, y) <- x -[c c*]-> y", base.alphabet_mut()).unwrap();
    let a = base.alphabet_mut().intern("a");
    let b = base.alphabet_mut().intern("b");

    let mut d =
        DurableGraph::create_with(FaultyStorage::new(), SNAP, WAL, base, SyncPolicy::Always)
            .unwrap();
    // Warm the catalog against the pre-crash state (as a long-lived server
    // would), then churn label `a` through the durable layer and crash.
    let mut catalog = RelationCatalog::new(d.graph());
    eval_tuples_with_catalog(&q_ab, d.graph(), Semantics::Standard, &mut catalog);
    eval_tuples_with_catalog(&q_c, d.graph(), Semantics::Standard, &mut catalog);
    let populated = catalog.cached_entries();
    assert!(populated >= 2);

    d.insert_edge(NodeId(0), a, NodeId(9)).unwrap();
    d.insert_edge(NodeId(3), a, NodeId(7)).unwrap();
    d.delete_edge(NodeId(0), a, NodeId(9)).unwrap();
    let mut storage = d.into_storage();
    storage.crash_drop_unsynced();

    let (d2, report) = DurableGraph::open_with(storage, SNAP, WAL, SyncPolicy::Always).unwrap();
    assert_eq!(report.replayed, 3);
    assert_eq!(report.mutated_labels, vec![a], "only `a` was churned");
    assert!(!report.mutated_labels.contains(&b));

    // Rehydrate: exactly the `a`-footprint entry is evicted…
    let evicted = catalog.rehydrate_after_recovery(d2.graph(), &report);
    assert_eq!(evicted, 1, "only the footprint-matching entry goes");
    assert_eq!(catalog.cached_entries(), populated - 1);
    // …the disjoint-footprint entry keeps serving…
    let before = catalog.cached_entries();
    let got_c = eval_tuples_with_catalog(&q_c, d2.graph(), Semantics::Standard, &mut catalog);
    assert_eq!(catalog.cached_entries(), before, "c-entry must stay warm");
    // …and every answer matches a cold catalog over the recovered graph.
    let mut cold = RelationCatalog::new(d2.graph());
    let got_ab = eval_tuples_with_catalog(&q_ab, d2.graph(), Semantics::Standard, &mut catalog);
    assert_eq!(
        got_c,
        eval_tuples_with_catalog(&q_c, d2.graph(), Semantics::Standard, &mut cold)
    );
    assert_eq!(
        got_ab,
        eval_tuples_with_catalog(&q_ab, d2.graph(), Semantics::Standard, &mut cold)
    );

    // A recovered WAL that grew the node universe forces a full rebind.
    let mut d3 = DurableGraph::create_with(
        FaultyStorage::new(),
        SNAP,
        WAL,
        generators::random_graph(10, 30, &["a", "b", "c"], 7),
        SyncPolicy::Always,
    )
    .unwrap();
    let mut catalog = RelationCatalog::new(d3.graph());
    eval_tuples_with_catalog(&q_c, d3.graph(), Semantics::Standard, &mut catalog);
    assert!(catalog.cached_entries() >= 1);
    d3.add_node().unwrap();
    let storage = d3.into_storage();
    let (d4, report) = DurableGraph::open_with(storage, SNAP, WAL, SyncPolicy::Always).unwrap();
    assert_eq!(GraphView::num_nodes(d4.graph()), 11);
    catalog.rehydrate_after_recovery(d4.graph(), &report);
    assert_eq!(
        catalog.cached_entries(),
        0,
        "node-universe change must rebind (evict everything)"
    );
    let fresh = eval_tuples_with_catalog(&q_c, d4.graph(), Semantics::Standard, &mut catalog);
    let mut cold = RelationCatalog::new(d4.graph());
    assert_eq!(
        fresh,
        eval_tuples_with_catalog(&q_c, d4.graph(), Semantics::Standard, &mut cold)
    );
}

/// Group commit composes with recovery: a batch is one append + one sync,
/// and recovers atomically with the same prefix guarantees.
#[test]
fn group_commit_batches_recover_whole() {
    let seed = 0xBA7C;
    let (_, base, syms) = base_graph(seed);
    let mut d =
        DurableGraph::create_with(FaultyStorage::new(), SNAP, WAL, base, SyncPolicy::Always)
            .unwrap();
    let n = GraphView::num_nodes(d.graph());
    let mut rng = Rng(seed);
    for _ in 0..6 {
        let batch: Vec<EdgeMutation> = (0..8)
            .map(|_| {
                let u = NodeId(rng.below(n) as u32);
                let v = NodeId(rng.below(n) as u32);
                let label = syms[rng.below(syms.len())];
                if rng.below(10) < 6 {
                    EdgeMutation::Insert { u, label, v }
                } else {
                    EdgeMutation::Delete { u, label, v }
                }
            })
            .collect();
        d.apply_batch(&batch).unwrap();
    }
    let want = edge_set(d.graph());
    let logged = d.records_since_checkpoint();
    let mut storage = d.into_storage();
    storage.crash_drop_unsynced();
    let (d2, report) = DurableGraph::open_with(storage, SNAP, WAL, SyncPolicy::Always).unwrap();
    assert_eq!(report.replayed, logged, "whole batches are durable");
    assert_eq!(edge_set(d2.graph()), want);
}
