//! Differential property tests for the join-based evaluator: on random
//! graphs × random CRPQs, the relation/semi-join engine must return exactly
//! the same tuple sets as the legacy `|V|^arity` enumeration oracle, under
//! all three semantics — and the parallel partitioned join must agree too.

use crpq::core::{eval_tuples_parallel, eval_tuples_with, EvalStrategy};
use crpq::prelude::*;
use proptest::prelude::*;

fn random_instance(seed: u64, class: QueryClass, arity: usize) -> (Crpq, GraphDb) {
    let mut sigma = Interner::new();
    let q = crpq::workloads::random::random_query(
        crpq::workloads::random::RandomQueryParams {
            class,
            num_vars: 3,
            num_atoms: 2,
            alphabet: 2,
            arity,
            max_word: 2,
        },
        &mut sigma,
        seed,
    );
    let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 6, 12, seed ^ 0x9e37);
    (q, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Join engine ≡ enumeration oracle on finite-language CRPQs, arity 1.
    #[test]
    fn join_matches_oracle_finite(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::CrpqFin, 1);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// Join engine ≡ enumeration oracle on starred CRPQs (infinite
    /// languages, ε-variants), arity 2.
    #[test]
    fn join_matches_oracle_starred(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::Crpq, 2);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// Boolean queries: the join engine agrees with the oracle on emptiness.
    #[test]
    fn join_matches_oracle_boolean(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::Crpq, 0);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// The analyzed engine (deletion-closed fast path) rides the join
    /// pipeline and must agree with the oracle as well.
    #[test]
    fn analyzed_join_matches_oracle(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::Crpq, 1);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_analyzed(&q, &g, sem),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// Domain-partitioned parallel join ≡ sequential join.
    #[test]
    fn parallel_join_matches_sequential(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::Crpq, 2);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_parallel(&q, &g, sem, 3),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// The membership engine agrees tuple-by-tuple with the join result set
    /// (join results are exactly the tuples whose membership test passes).
    #[test]
    fn membership_consistent_with_join(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::CrpqFin, 1);
        for sem in Semantics::ALL {
            let results = eval_tuples_with(&q, &g, sem, EvalStrategy::Join);
            for n in g.nodes() {
                let member = eval_contains(&q, &g, &[n], sem);
                prop_assert_eq!(
                    results.contains(&vec![n]),
                    member,
                    "seed {} sem {} node {:?}", seed, sem, n
                );
            }
        }
    }
}
