//! Differential tests for the dynamic-graph read path: a [`DeltaGraph`]
//! (base snapshot + sorted overlay) must be observationally equivalent to
//! a frozen [`GraphDb`] rebuilt from scratch over the same edge set, under
//! every semantics and executor — binary join, WCOJ, the work-stealing
//! parallel executor, and the streaming producer. Schedules cover mixed
//! insert/delete churn, delete-heavy workloads (tombstone-dominated
//! overlays), and compaction boundaries (tiny threshold, compact + re-wrap
//! mid-schedule). A final test counter-asserts the label-footprint catalog
//! invalidation contract: mutating label `ℓ` evicts exactly the cached
//! relations whose NFA alphabet mentions `ℓ`.

use crpq::core::{eval_stream, eval_tuples, eval_tuples_parallel, eval_tuples_with, Semantics};
use crpq::core::{eval_tuples_with_catalog, EvalStrategy, RelationCatalog};
use crpq::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

/// Deterministic splitmix64 — mutation schedules must be reproducible from
/// the proptest seed alone.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Rebuild a frozen snapshot from whatever the view exposes. Node ids are
/// dense and preserved (anonymous builder assigns `0..n` in order), so
/// answer tuples from the view and the rebuild compare directly.
fn rebuild<G: GraphView>(g: &G) -> GraphDb {
    let mut b = GraphBuilder::anonymous_with_alphabet(g.num_nodes(), g.alphabet().clone());
    for v in 0..g.num_nodes() {
        let v = NodeId(v as u32);
        for (l, t) in g.out_edges_iter(v) {
            b.edge_ids(v, l, t);
        }
    }
    b.finish()
}

/// The acceptance matrix: every semantics × every executor agrees between
/// the overlay view and the from-scratch rebuild.
fn assert_all_executors_agree(q: &Crpq, delta: &DeltaGraph, ctx: &str) {
    let frozen = rebuild(delta);
    assert_eq!(
        frozen.num_edges(),
        GraphView::num_edges(delta),
        "num_edges drifted from the overlay's incremental count [{ctx}]"
    );
    let shared = Arc::new(delta.clone());
    for sem in Semantics::ALL {
        let expect = eval_tuples(q, &frozen, sem);
        for strategy in [EvalStrategy::BinaryJoin, EvalStrategy::Wcoj] {
            let got = eval_tuples_with(q, delta, sem, strategy);
            assert_eq!(got, expect, "{strategy:?} under {sem} [{ctx}]");
        }
        let parallel = eval_tuples_parallel(q, delta, sem, 4);
        assert_eq!(parallel, expect, "parallel under {sem} [{ctx}]");
        let mut streamed: Vec<Vec<NodeId>> = eval_stream(q, &shared, sem).collect();
        streamed.sort();
        assert_eq!(streamed, expect, "stream under {sem} [{ctx}]");
    }
}

fn setup(seed: u64, nodes: usize, edges: usize) -> (Crpq, DeltaGraph, Vec<Symbol>) {
    let mut base = generators::random_graph(nodes, edges, &["a", "b", "c"], seed);
    let q = parse_crpq(
        "(x, y) <- x -[(a+b)b*]-> y, y -[c]-> z",
        base.alphabet_mut(),
    )
    .unwrap();
    let mut g = DeltaGraph::new(base);
    let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|l| g.label(l)).collect();
    (q, g, syms)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Mixed churn: interleaved inserts and deletes, including no-op
    /// duplicates and revivals, never diverge from a rebuild.
    #[test]
    fn delta_matches_rebuild_under_mixed_churn(seed in 0u64..100_000) {
        let (q, mut g, syms) = setup(seed, 12, 40);
        let n = GraphView::num_nodes(&g);
        let mut rng = Rng(seed ^ 0xD1F7);
        for step in 0..30 {
            let u = NodeId(rng.below(n) as u32);
            let v = NodeId(rng.below(n) as u32);
            let l = syms[rng.below(syms.len())];
            if rng.below(10) < 6 {
                g.insert_edge(u, l, v);
            } else {
                g.delete_edge(u, l, v);
            }
            if step % 10 == 9 {
                assert_all_executors_agree(&q, &g, &format!("mixed seed {seed} step {step}"));
            }
        }
    }

    /// Delete-heavy schedule: tombstone most of the base so the merge
    /// iterators spend their time cancelling base heads.
    #[test]
    fn delta_matches_rebuild_when_delete_heavy(seed in 0u64..100_000) {
        let (q, mut g, syms) = setup(seed, 12, 40);
        let n = GraphView::num_nodes(&g);
        let mut rng = Rng(seed ^ 0xBEEF);
        let all_edges: Vec<(NodeId, Symbol, NodeId)> = (0..n)
            .flat_map(|v| {
                let v = NodeId(v as u32);
                g.out_edges_iter(v).map(move |(l, t)| (v, l, t)).collect::<Vec<_>>()
            })
            .collect();
        for &(u, l, v) in &all_edges {
            if rng.below(10) < 7 {
                assert!(g.delete_edge(u, l, v), "live base edge must delete");
            }
        }
        // A sprinkle of inserts so adds and dels coexist per node.
        for _ in 0..5 {
            let u = NodeId(rng.below(n) as u32);
            let v = NodeId(rng.below(n) as u32);
            g.insert_edge(u, syms[rng.below(syms.len())], v);
        }
        assert_all_executors_agree(&q, &g, &format!("delete-heavy seed {seed}"));
    }

    /// Compaction boundary: a tiny threshold forces several compact +
    /// re-wrap cycles mid-schedule; equivalence must hold right before and
    /// right after each rebuild, and the final compacted snapshot must
    /// equal the rebuild of the view it replaced.
    #[test]
    fn delta_matches_rebuild_across_compaction(seed in 0u64..100_000) {
        let (q, g, syms) = setup(seed, 10, 30);
        let mut g = DeltaGraph::with_compact_threshold(rebuild(&g), 4);
        let n = GraphView::num_nodes(&g);
        let mut rng = Rng(seed ^ 0xC0DE);
        let mut compactions = 0usize;
        for step in 0..24 {
            let u = NodeId(rng.below(n) as u32);
            let v = NodeId(rng.below(n) as u32);
            let l = syms[rng.below(syms.len())];
            if rng.below(2) == 0 {
                g.insert_edge(u, l, v);
            } else {
                g.delete_edge(u, l, v);
            }
            if g.should_compact() {
                let expect = rebuild(&g);
                assert_all_executors_agree(&q, &g, &format!("pre-compact seed {seed} step {step}"));
                let threshold = g.compact_threshold();
                g.compact_in_place();
                assert_eq!(g.base().num_edges(), expect.num_edges(), "compact edge count");
                assert_eq!(g.compact_threshold(), threshold, "threshold survives");
                assert!(g.delta().is_empty(), "fresh overlay after compaction");
                assert_all_executors_agree(&q, &g, &format!("post-compact seed {seed} step {step}"));
                compactions += 1;
            }
        }
        assert!(compactions >= 1, "threshold 4 must trigger at least one compaction in 24 ops");
        assert_all_executors_agree(&q, &g, &format!("final seed {seed}"));
    }
}

/// Label-footprint catalog invalidation, counter-asserted: after mutating
/// label `a`, only the cached relation whose NFA alphabet mentions `a` is
/// evicted — the disjoint-footprint `c`-relation survives and keeps
/// serving hits — and the catalog-backed answers still match a rebuild.
#[test]
fn footprint_invalidation_evicts_only_matching_entries() {
    let mut base = generators::random_graph(10, 30, &["a", "b", "c"], 7);
    let q_ab = parse_crpq("(x, y) <- x -[a b*]-> y", base.alphabet_mut()).unwrap();
    let q_c = parse_crpq("(x, y) <- x -[c c*]-> y", base.alphabet_mut()).unwrap();
    let d = base.alphabet_mut().intern("d"); // interned, never used by any entry
    let mut g = DeltaGraph::new(base);
    let a = g.label("a");

    let mut catalog = RelationCatalog::new(&g);
    eval_tuples_with_catalog(&q_ab, &g, Semantics::Standard, &mut catalog);
    eval_tuples_with_catalog(&q_c, &g, Semantics::Standard, &mut catalog);
    let populated = catalog.cached_entries();
    assert!(
        populated >= 2,
        "both queries must cache at least one relation each"
    );

    // An untouched label evicts nothing.
    assert_eq!(catalog.invalidate_label(d), 0);
    assert_eq!(catalog.evictions(), 0);
    assert_eq!(catalog.cached_entries(), populated);

    // Mutate label `a`: the (a b*) entry goes, the (c c*) entry stays.
    let mutated = g.insert_edge(NodeId(0), a, NodeId(9)) || g.delete_edge(NodeId(0), a, NodeId(9));
    assert!(mutated, "schedule must actually change the graph");
    let evicted = catalog.invalidate_label(a);
    assert_eq!(
        evicted, 1,
        "exactly the footprint-matching entry is evicted"
    );
    assert_eq!(catalog.evictions(), 1);
    assert_eq!(catalog.cached_entries(), populated - 1);

    // The surviving entry is a warm hit: answering `q_c` adds no entries.
    let before = catalog.cached_entries();
    let got_c = eval_tuples_with_catalog(&q_c, &g, Semantics::Standard, &mut catalog);
    assert_eq!(
        catalog.cached_entries(),
        before,
        "disjoint-footprint entry must be a hit"
    );
    // The evicted entry re-materialises against the mutated view.
    let got_ab = eval_tuples_with_catalog(&q_ab, &g, Semantics::Standard, &mut catalog);
    assert_eq!(catalog.cached_entries(), populated);

    let frozen = rebuild(&g);
    assert_eq!(got_c, eval_tuples(&q_c, &frozen, Semantics::Standard));
    assert_eq!(got_ab, eval_tuples(&q_ab, &frozen, Semantics::Standard));
}
