//! Differential tests pinning the scale-path data structures against
//! oracles: the sparse-offset per-label CSR against the node-major flat
//! adjacency, the column-blocked closure materialiser against per-source
//! sweeps at every block size, and the full join engine (sparse-offset
//! CSR with adaptive semi-join domains) against the legacy enumeration
//! oracle on label-rich Zipf graphs under all three semantics.

use crpq::core::{eval_tuples_with, EvalStrategy};
use crpq::graph::rpq::{self, ReachScratch};
use crpq::graph::{generators, NodeId};
use crpq::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The per-label sparse-offset CSR must agree with the node-major flat
    /// adjacency on every (node, label) pair — including labels the node
    /// never carries (absent slots) and labels the graph never uses.
    #[test]
    fn sparse_csr_matches_flat_adjacency(seed in 0u64..100_000) {
        let g = generators::zipf_label_graph(30, 120, 20, 1.0, seed);
        for v in g.nodes() {
            for (sym, _) in g.alphabet().iter() {
                let fwd: Vec<NodeId> = g
                    .out_edges(v)
                    .iter()
                    .filter(|&&(s, _)| s == sym)
                    .map(|&(_, t)| t)
                    .collect();
                prop_assert_eq!(g.successors_slice(v, sym), &fwd[..]);
                let bwd: Vec<NodeId> = g
                    .in_edges(v)
                    .iter()
                    .filter(|&&(s, _)| s == sym)
                    .map(|&(_, t)| t)
                    .collect();
                prop_assert_eq!(g.predecessors_slice(v, sym), &bwd[..]);
            }
        }
    }

    /// The blocked closure materialiser returns the same relation as the
    /// per-source sweeps whatever the block budget — from one word per row
    /// up to a single block.
    #[test]
    fn blocked_closure_matches_sweeps(seed in 0u64..100_000) {
        let mut g = generators::zipf_label_graph(60, 220, 8, 1.0, seed);
        let regex = crpq::automata::parse_regex("l0 (l1+l2)*", g.alphabet_mut()).unwrap();
        let nfa = crpq::automata::Nfa::from_regex(&regex);
        let reference = rpq::rpq_relation(&g, &nfa, &mut ReachScratch::new());
        for budget_bits in [64usize, 1 << 12, usize::MAX] {
            prop_assert_eq!(
                &rpq::rpq_relation_closure_blocked(&g, &nfa, budget_bits),
                &reference,
                "budget {} seed {}", budget_bits, seed
            );
        }
    }

    /// Join engine (adaptive domains over the sparse-offset CSR) ≡
    /// enumeration oracle on label-rich graphs, all three semantics.
    #[test]
    fn label_rich_join_matches_oracle(seed in 0u64..100_000) {
        let mut g = generators::zipf_label_graph(14, 56, 10, 1.0, seed);
        let q = crpq::workloads::scaling::label_rich_query(g.alphabet_mut());
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// The million-node family scaled down: the O(touched) assembly +
    /// sparse-scratch paths (anonymous graph, uniform labels, anchored
    /// chain query) ≡ enumeration oracle under all three semantics.
    #[test]
    fn million_family_join_matches_oracle(seed in 0u64..100_000) {
        let mut g = generators::anonymous_random_graph(16, 64, 16, seed);
        let q = crpq::workloads::scaling::million_query(g.alphabet_mut());
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "seed {} sem {}", seed, sem
            );
        }
    }

    /// Touched-set backward assembly ≡ the forward rows transposed, on
    /// relations materialised through every entry path (sequential,
    /// parallel, auto) over anonymous graphs.
    #[test]
    fn reverse_index_matches_forward_transpose(seed in 0u64..100_000) {
        let mut g = generators::anonymous_random_graph(48, 150, 6, seed);
        let regex = crpq::automata::parse_regex("l0 (l1+l2)*", g.alphabet_mut()).unwrap();
        let nfa = crpq::automata::Nfa::from_regex(&regex);
        let reference = rpq::rpq_relation(&g, &nfa, &mut ReachScratch::new());
        for v in g.nodes() {
            let back: Vec<usize> = reference.backward(v).iter().collect();
            let expect: Vec<usize> = g
                .nodes()
                .filter(|&u| reference.contains(u, v))
                .map(crpq::prelude::NodeId::index)
                .collect();
            prop_assert_eq!(back, expect, "column {} seed {}", v.index(), seed);
        }
        let parallel = rpq::rpq_relation_parallel(&g, &nfa, 3);
        prop_assert_eq!(&parallel, &reference);
        let auto = rpq::rpq_relation_auto(&g, &nfa, &mut ReachScratch::new(), 2);
        prop_assert_eq!(&auto, &reference);
    }
}
