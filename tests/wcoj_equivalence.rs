//! Differential property tests for the worst-case-optimal join executor:
//! on the cyclic workloads (triangle, 4-cycle, diamond-with-chord, starred
//! triangle) and on random CRPQs, the WCOJ engine must return exactly the
//! same tuple sets as the backtracking binary join and the legacy
//! enumeration oracle, under all three semantics — including graphs where
//! the cyclic output is empty, and through the auto-dispatching default
//! strategy and the parallel engine.

use crpq::core::{eval_tuples_parallel, eval_tuples_with, EvalStrategy};
use crpq::prelude::*;
use crpq::workloads::cyclic;
use proptest::prelude::*;

/// All three join-shaped strategies must agree with the enumeration
/// oracle; returns the oracle's result for further checks.
fn assert_engines_agree(q: &Crpq, g: &GraphDb, ctx: &str) -> Vec<Vec<Vec<NodeId>>> {
    let mut per_sem = Vec::new();
    for sem in Semantics::ALL {
        let oracle = eval_tuples_with(q, g, sem, EvalStrategy::Enumerate);
        for strategy in [
            EvalStrategy::Join,
            EvalStrategy::BinaryJoin,
            EvalStrategy::Wcoj,
        ] {
            assert_eq!(
                eval_tuples_with(q, g, sem, strategy),
                oracle,
                "{ctx}: {strategy:?} vs oracle under {sem}"
            );
        }
        assert_eq!(
            eval_tuples_parallel(q, g, sem, 3),
            oracle,
            "{ctx}: parallel vs oracle under {sem}"
        );
        per_sem.push(oracle);
    }
    per_sem
}

#[test]
fn triangle_matches_oracle_on_random_graphs() {
    for seed in 0..8u64 {
        let mut g = cyclic::cyclic_graph(14, seed);
        let q = cyclic::triangle_query(g.alphabet_mut());
        assert_engines_agree(&q, &g, &format!("triangle seed {seed}"));
    }
}

#[test]
fn triangle_empty_output_matches_oracle() {
    // Stratified graph: no c-edge ever closes a triangle. The WCOJ
    // executor must agree that the output is empty under every semantics
    // (the binary join short-circuits on empty domains; WCOJ must too).
    let mut g = cyclic::triangle_free_graph(6);
    let q = cyclic::triangle_query(g.alphabet_mut());
    let per_sem = assert_engines_agree(&q, &g, "triangle-free");
    assert!(per_sem.iter().all(std::vec::Vec::is_empty));
}

#[test]
fn four_cycle_matches_oracle_on_random_graphs() {
    for seed in 0..5u64 {
        let mut g = cyclic::cyclic_graph(10, seed);
        let q = cyclic::four_cycle_query(g.alphabet_mut());
        assert_engines_agree(&q, &g, &format!("4-cycle seed {seed}"));
    }
}

#[test]
fn diamond_chord_matches_oracle_on_random_graphs() {
    for seed in 0..5u64 {
        let mut g = cyclic::cyclic_graph_with_density(9, 8, seed);
        let q = cyclic::diamond_chord_query(g.alphabet_mut());
        assert_engines_agree(&q, &g, &format!("diamond-chord seed {seed}"));
    }
}

#[test]
fn starred_triangle_exercises_per_variant_dispatch() {
    // 8 ε-free variants: collapsed ones lose variables (some acyclic),
    // non-collapsed ones stay cyclic — Join auto-dispatch mixes executors
    // within a single evaluation and must still match the oracle.
    for seed in [1u64, 4, 9] {
        let mut g = crpq::graph::generators::random_graph(8, 24, &["a", "b", "c"], seed);
        let q = cyclic::starred_triangle_query(g.alphabet_mut());
        assert_engines_agree(&q, &g, &format!("starred triangle seed {seed}"));
    }
}

fn random_instance(seed: u64, arity: usize) -> (Crpq, GraphDb) {
    let mut sigma = Interner::new();
    let q = crpq::workloads::random::random_query(
        crpq::workloads::random::RandomQueryParams {
            class: QueryClass::Crpq,
            num_vars: 3,
            num_atoms: 3,
            alphabet: 2,
            arity,
            max_word: 2,
        },
        &mut sigma,
        seed,
    );
    let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 6, 12, seed ^ 0x517c);
    (q, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// Forced WCOJ ≡ forced binary join ≡ oracle on random 3-atom CRPQs
    /// (which frequently close cycles on 3 variables), arity 1.
    #[test]
    fn wcoj_matches_oracle_random(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, 1);
        for sem in Semantics::ALL {
            let oracle = eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate);
            prop_assert_eq!(
                &eval_tuples_with(&q, &g, sem, EvalStrategy::Wcoj),
                &oracle,
                "wcoj seed {} sem {}", seed, sem
            );
            prop_assert_eq!(
                &eval_tuples_with(&q, &g, sem, EvalStrategy::BinaryJoin),
                &oracle,
                "binary seed {} sem {}", seed, sem
            );
        }
    }

    /// The auto-dispatching default strategy on Boolean random CRPQs.
    #[test]
    fn auto_dispatch_matches_oracle_boolean(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, 0);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "seed {} sem {}", seed, sem
            );
        }
    }
}
