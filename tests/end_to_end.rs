//! Cross-crate integration tests: parse → evaluate → contain, engine
//! cross-validation, and reduction round-trips.

use crpq::containment::abstraction;
use crpq::core::expansion_eval;
use crpq::prelude::*;
use crpq::workloads::{paper_examples as paper, random};

#[test]
fn parse_evaluate_contain_pipeline() {
    let mut b = GraphBuilder::new();
    b.edge("a1", "edge", "a2");
    b.edge("a2", "edge", "a3");
    b.edge("a3", "edge", "a1");
    let mut g = b.finish();
    let q = parse_crpq("(x, y) <- x -[edge edge]-> y", g.alphabet_mut()).unwrap();
    let st = eval_tuples(&q, &g, Semantics::Standard);
    assert_eq!(st.len(), 3, "each node reaches one other in two steps");
    let qi = eval_tuples(&q, &g, Semantics::QueryInjective);
    assert_eq!(st, qi, "triangle two-hops are injective");

    let mut sigma = Interner::new();
    let q1 = parse_crpq("x -[edge edge]-> y", &mut sigma).unwrap();
    let q2 = parse_crpq("x -[edge]-> y", &mut sigma).unwrap();
    for sem in Semantics::ALL {
        assert!(
            contain(&q1, &q2, sem).is_contained(),
            "two hops imply one hop under {sem}"
        );
    }
}

#[test]
fn direct_and_expansion_evaluators_agree() {
    // The deepest internal consistency check: the operational engine
    // (path search) versus the characterisation engine (Prop 2.2/2.3).
    for seed in 0..6u64 {
        let mut sigma = Interner::new();
        let q = random::random_query(
            random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 3,
                num_atoms: 2,
                alphabet: 2,
                arity: 1,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        let g = random::random_graph_for(&mut sigma, 2, 5, 10, seed + 100);
        for sem in Semantics::ALL {
            for node in g.nodes() {
                let direct = eval_contains(&q, &g, &[node], sem);
                let via_exp = expansion_eval::eval_contains_complete(&q, &g, &[node], sem);
                assert_eq!(
                    direct, via_exp,
                    "engines disagree: seed={seed} node={node:?} sem={sem}"
                );
            }
        }
    }
}

#[test]
fn abstraction_and_naive_containment_agree_on_finite() {
    for seed in 0..8u64 {
        let mut sigma = Interner::new();
        let q1 = random::random_query(
            random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 2,
                num_atoms: 2,
                alphabet: 2,
                arity: 0,
                max_word: 2,
            },
            &mut sigma,
            seed,
        );
        let q2 = random::random_query(
            random::RandomQueryParams {
                class: QueryClass::CrpqFin,
                num_vars: 2,
                num_atoms: 1,
                alphabet: 2,
                arity: 0,
                max_word: 2,
            },
            &mut sigma,
            seed + 1000,
        );
        let naive = contain(&q1, &q2, Semantics::QueryInjective);
        if let (Some(abs), Some(naive)) = (abstraction::try_contain_qinj(&q1, &q2), naive.as_bool())
        {
            assert_eq!(abs, naive, "abstraction vs naive on seed {seed}");
        }
    }
}

#[test]
fn hierarchy_on_paper_and_random_instances() {
    let mut sigma = Interner::new();
    let q = paper::example21_query(&mut sigma);
    for g in [
        paper::example21_g(&sigma),
        paper::example21_gprime(&sigma),
        paper::example21_full_separation(&sigma),
    ] {
        assert!(check_hierarchy(&q, &g).holds());
    }
    for seed in 0..4u64 {
        let mut sigma = Interner::new();
        let q = random::random_query(
            random::RandomQueryParams {
                arity: 2,
                ..Default::default()
            },
            &mut sigma,
            seed,
        );
        let g = random::random_graph_for(&mut sigma, 3, 5, 12, seed);
        assert!(check_hierarchy(&q, &g).holds(), "Remark 2.1 on seed {seed}");
    }
}

#[test]
fn counter_examples_are_verifiable() {
    // Whenever the engine reports NotContained, re-checking the witness by
    // evaluation must confirm it.
    let mut sigma = Interner::new();
    let q1 = parse_crpq("(x, y) <- x -[a+b]-> y", &mut sigma).unwrap();
    let q2 = parse_crpq("(x, y) <- x -[a]-> y", &mut sigma).unwrap();
    for sem in Semantics::ALL {
        let out = contain(&q1, &q2, sem);
        match out {
            Outcome::NotContained(ce) => {
                let g = ce.witness.to_graph_anon(sigma.len());
                let tuple: Vec<NodeId> = ce.witness.free.iter().map(|v| NodeId(v.0)).collect();
                assert!(
                    eval_contains(&q1, &g, &tuple, sem),
                    "witness satisfies Q1 under {sem}"
                );
                assert!(
                    !eval_contains(&q2, &g, &tuple, sem),
                    "witness avoids Q2 under {sem}"
                );
            }
            other => panic!("expected NotContained under {sem}, got {other:?}"),
        }
    }
}

#[test]
fn epsilon_queries_flow_through_everything() {
    let mut b = GraphBuilder::new();
    b.edge("u", "a", "v");
    let mut g = b.finish();
    let q = parse_crpq("(x, y) <- x -[a?]-> y", g.alphabet_mut()).unwrap();
    let st = eval_tuples(&q, &g, Semantics::Standard);
    // (u,u), (v,v) via ε and (u,v) via a.
    assert_eq!(st.len(), 3);
    for sem in Semantics::ALL {
        assert_eq!(eval_tuples(&q, &g, sem).len(), 3, "ε-handling under {sem}");
    }

    let mut sigma = Interner::new();
    let q1 = parse_crpq("(x, y) <- x -[a]-> y", &mut sigma).unwrap();
    let q2 = parse_crpq("(x, y) <- x -[a?]-> y", &mut sigma).unwrap();
    for sem in Semantics::ALL {
        assert!(contain(&q1, &q2, sem).is_contained(), "a ⊆ a? under {sem}");
        assert!(
            contain(&q2, &q1, sem).is_not_contained(),
            "a? ⊄ a under {sem}"
        );
    }
}

#[test]
fn graph_formats_roundtrip_through_evaluation() {
    use crpq::graph::format;
    let g = crpq::graph::generators::random_graph(10, 25, &["a", "b"], 3);
    let text = format::to_graph_text(&g).unwrap();
    let mut g2 = format::parse_graph_text(&text).unwrap();
    let bin = format::to_binary(&g);
    let g3 = format::from_binary(bin).unwrap();
    assert_eq!(g2.num_edges(), g3.num_edges());

    let q = parse_crpq("(x, y) <- x -[a b]-> y", g2.alphabet_mut()).unwrap();
    let r2 = eval_tuples(&q, &g2, Semantics::Standard);
    // node ids may be permuted across formats; compare by names
    let names = |g: &GraphDb, ts: &[Vec<NodeId>]| {
        let mut v: Vec<(String, String)> = ts
            .iter()
            .map(|t| (g.node_name(t[0]).to_owned(), g.node_name(t[1]).to_owned()))
            .collect();
        v.sort();
        v
    };
    let mut g3 = g3;
    let q3 = parse_crpq("(x, y) <- x -[a b]-> y", g3.alphabet_mut()).unwrap();
    let r3 = eval_tuples(&q3, &g3, Semantics::Standard);
    assert_eq!(names(&g2, &r2), names(&g3, &r3));
}

#[test]
fn two_way_navigation_c2rpq() {
    use crpq::graph::two_way::augment_with_inverses;
    // Sibling pattern via inverse steps: x -[a⁻ a]-> y on a 2-child parent.
    let mut b = GraphBuilder::new();
    b.edge("p", "a", "c1");
    b.edge("p", "a", "c2");
    let g = b.finish();
    let (mut g2, _) = augment_with_inverses(&g);
    let q = parse_crpq("(x, y) <- x -[a⁻ a]-> y", g2.alphabet_mut()).unwrap();
    let tuples = eval_tuples(&q, &g2, Semantics::QueryInjective);
    // q-inj: x ≠ y with the parent as distinct internal node: exactly the
    // two ordered sibling pairs.
    let names: Vec<(String, String)> = tuples
        .iter()
        .map(|t| (g2.node_name(t[0]).to_owned(), g2.node_name(t[1]).to_owned()))
        .collect();
    assert_eq!(names.len(), 2);
    assert!(names.contains(&("c1".into(), "c2".into())));
    // Standard semantics additionally returns the self-pairs (x = y via
    // the same child twice is blocked only by injectivity).
    let st = eval_tuples(&q, &g2, Semantics::Standard);
    assert_eq!(st.len(), 4);
}

#[test]
fn core_minimisation_preserves_containment() {
    // Q and core(Q) are equivalent under standard semantics.
    let mut sigma = Interner::new();
    let q = parse_crpq("x -[a]-> y, x -[a]-> z, z -[b]-> w", &mut sigma).unwrap();
    let cq = q.as_cq().unwrap();
    let core = cq.core();
    assert!(core.num_vars < cq.num_vars, "redundant branch must fold");
    let q_core = Crpq::from_cq(&core);
    assert!(contain(&q, &q_core, Semantics::Standard).is_contained());
    assert!(contain(&q_core, &q, Semantics::Standard).is_contained());
}
