//! Differential property tests for the planner layer: catalog-backed
//! evaluation (shared atom relations, adaptive sparse/dense rows) must
//! return exactly the same tuple sets as the legacy `|V|^arity`
//! enumeration oracle and as the parallel partitioned join, on random
//! graphs × random CRPQs under all three semantics — including when one
//! catalog is reused across semantics and repeated calls. Plus unit tests
//! pinning the sharing contract itself: a multi-variant query with shared
//! atoms materialises each distinct atom exactly once, observable through
//! the catalog's hit/miss counters.

use crpq::core::{
    eval_tuples_parallel, eval_tuples_with, eval_tuples_with_catalog, EvalStrategy, RelationCatalog,
};
use crpq::prelude::*;
use proptest::prelude::*;

fn random_instance(seed: u64, class: QueryClass, arity: usize) -> (Crpq, GraphDb) {
    let mut sigma = Interner::new();
    let q = crpq::workloads::random::random_query(
        crpq::workloads::random::RandomQueryParams {
            class,
            num_vars: 3,
            num_atoms: 2,
            alphabet: 2,
            arity,
            max_word: 2,
        },
        &mut sigma,
        seed,
    );
    let g = crpq::workloads::random::random_graph_for(&mut sigma, 2, 6, 12, seed ^ 0x517c);
    (q, g)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// One catalog reused across all three semantics (and therefore across
    /// 3× the ε-free variants) still matches the enumeration oracle and
    /// the parallel engine; relations materialised for one semantics are
    /// hits for the next.
    #[test]
    fn shared_catalog_matches_oracle_and_parallel(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::Crpq, 2);
        let mut catalog = RelationCatalog::new(&g);
        for sem in Semantics::ALL {
            let shared = eval_tuples_with_catalog(&q, &g, sem, &mut catalog);
            prop_assert_eq!(
                &shared,
                &eval_tuples_with(&q, &g, sem, EvalStrategy::Enumerate),
                "catalog vs oracle, seed {} sem {}", seed, sem
            );
            prop_assert_eq!(
                &shared,
                &eval_tuples_parallel(&q, &g, sem, 3),
                "catalog vs parallel, seed {} sem {}", seed, sem
            );
        }
        // Every distinct atom is materialised at most once across all three
        // semantics: the runs for the second and third semantics repeat the
        // first run's lookups exactly, so they are pure hits and hits must
        // be at least twice the misses.
        prop_assert!(
            catalog.hits() >= 2 * catalog.misses(),
            "later semantics must reuse the first run's relations \
             (hits {} misses {})", catalog.hits(), catalog.misses()
        );
    }

    /// Finite-language queries, arity 1, with a catalog reused across
    /// *repeated* evaluations of the same query: the second pass must be
    /// all hits and return the identical result.
    #[test]
    fn repeated_evaluation_is_all_hits(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::CrpqFin, 1);
        let mut catalog = RelationCatalog::new(&g);
        let first = eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog);
        let misses_after_first = catalog.misses();
        let second = eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog);
        prop_assert_eq!(first, second, "seed {}", seed);
        prop_assert_eq!(
            catalog.misses(), misses_after_first,
            "second evaluation must not materialise anything, seed {}", seed
        );
    }

    /// The per-variant (pre-catalog) baseline engine agrees with the
    /// catalog-backed engine — they differ only in sharing, never results.
    #[test]
    fn unshared_baseline_matches_catalog(seed in 0u64..100_000) {
        let (q, g) = random_instance(seed, QueryClass::Crpq, 1);
        for sem in Semantics::ALL {
            prop_assert_eq!(
                crpq::core::eval_tuples_join_unshared(&q, &g, sem),
                eval_tuples_with(&q, &g, sem, EvalStrategy::Join),
                "seed {} sem {}", seed, sem
            );
        }
    }
}

/// A 2-variant query whose variants share an atom verbatim performs
/// exactly one materialisation per *distinct* atom — the sharing contract
/// of the catalog, observed through its hit/miss counters.
#[test]
fn shared_atoms_materialise_once() {
    let mut b = GraphBuilder::new();
    b.edge("u", "a", "v");
    b.edge("v", "b", "w");
    let mut g = b.finish();
    // a* is nullable → two ε-free variants: {x -[a⁺]-> y, y -[b]-> z} and
    // the collapse x=y with {y -[b]-> z}. The `b` atom is shared verbatim,
    // so the distinct atoms are exactly {a⁺, b}.
    let q = parse_crpq("(z) <- x -[a*]-> y, y -[b]-> z", g.alphabet_mut()).unwrap();
    assert_eq!(q.epsilon_free_union().len(), 2);

    let mut catalog = RelationCatalog::new(&g);
    let result = eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog);
    assert_eq!(result, vec![vec![g.node_by_name("w").unwrap()]]);
    assert_eq!(
        catalog.misses(),
        2,
        "exactly one materialisation per distinct atom (a⁺ and b)"
    );
    assert_eq!(catalog.hits(), 1, "the shared b atom is a catalog hit");
    assert_eq!(catalog.len(), 2);
    assert!(catalog.hit_rate() > 0.0);
}

/// The same atom language written through different-but-equal regexes
/// still unifies via the canonical NFA key when the compiled automata are
/// structurally identical across variants of one query.
#[test]
fn canonical_keys_unify_across_variants() {
    let mut sigma = Interner::new();
    // Both atoms nullable → 4 ε-free variants, reusing the (ab)⁺ and c⁺
    // relations across them: 2 misses, with every other lookup a hit.
    let q = parse_crpq("(x, y) <- x -[(a b)*]-> y, y -[c*]-> x", &mut sigma).unwrap();
    let g = crpq::workloads::scaling::data_complexity_graph(30, 11);
    let mut catalog = RelationCatalog::new(&g);
    let _ = eval_tuples_with_catalog(&q, &g, Semantics::Standard, &mut catalog);
    assert_eq!(q.epsilon_free_union().len(), 4);
    assert_eq!(catalog.misses(), 2, "only (ab)⁺ and c⁺ are distinct");
    assert_eq!(
        catalog.hits(),
        2,
        "the collapsed self-loop variants reuse them"
    );
}

/// `CrpqAtom::canonical_key` agrees with the key of the compiled NFA, and
/// differs across languages.
#[test]
fn atom_canonical_key_matches_nfa_key() {
    let mut sigma = Interner::new();
    let q = parse_crpq("x -[a b]-> y, y -[a b]-> z, z -[b a]-> w", &mut sigma).unwrap();
    let keys: Vec<_> = q
        .atoms
        .iter()
        .map(crpq::prelude::CrpqAtom::canonical_key)
        .collect();
    assert_eq!(keys[0], keys[1], "identical regexes share a key");
    assert_ne!(keys[0], keys[2], "different languages differ");
    assert_eq!(keys[0], q.atoms[0].nfa().canonical_key());
}
