//! `crpq-cli` — command-line front end for the library.
//!
//! ```sh
//! crpq-cli eval     --graph g.txt --query "(x,y) <- x -[a b]-> y" --semantics q-inj
//! crpq-cli contain  --q1 "x -[a]-> y, y -[b]-> z" --q2 "x -[a b]-> y" --semantics a-inj
//! crpq-cli classify --query "x -[(a b)*]-> y"
//! crpq-cli graph-info --graph g.txt
//! crpq-cli db-init  --graph g.txt --snapshot g.snap --wal g.wal
//! crpq-cli db-apply --snapshot g.snap --wal g.wal --mutations m.txt --sync every:8
//! crpq-cli db-info  --snapshot g.snap --wal g.wal
//! ```
//!
//! Graphs use either on-disk format of `crpq::graph::format` — the text
//! format (one `src label dst` edge per line) or the `CRPQ` binary
//! snapshot — detected by content. Semantics names: `st`, `a-inj`,
//! `q-inj`, `a-trail`, `q-trail`.
//!
//! Every user-facing failure (unknown flags/semantics, missing or
//! malformed graph files, unparsable queries) exits with an `error:` line
//! and a nonzero status — never a panic backtrace.

use crpq::core::{
    eval_ask, eval_ask_parallel, eval_contains_trail, eval_limit, eval_limit_parallel,
    eval_tuples_trail, TrailSemantics,
};
use crpq::graph::format::parse_graph_auto;
use crpq::graph::{DurableGraph, SyncPolicy};
use crpq::prelude::*;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok((output, code)) => {
            println!("{output}");
            ExitCode::from(code)
        }
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
usage:
  crpq-cli eval       --graph FILE --query Q [--semantics S] [--threads N] [--ask | --limit K]
                      [--tuple n1,n2,…] [--witness]
  crpq-cli contain    --q1 Q --q2 Q [--semantics S]
  crpq-cli classify   --query Q
  crpq-cli bounded    --query Q [--max-level K]
  crpq-cli graph-info --graph FILE
  crpq-cli db-init    --graph FILE --snapshot SNAP --wal WAL [--sync P]
  crpq-cli db-apply   --snapshot SNAP --wal WAL --mutations FILE [--sync P] [--compact]
  crpq-cli db-info    --snapshot SNAP --wal WAL
semantics S: st | a-inj | q-inj | a-trail | q-trail (default: st)
sync P: always | never | every:N (default: always)
mutations FILE: one `insert SRC LABEL DST`, `delete SRC LABEL DST` or `add-node`
  per line; `#` comments; db-info exits 1 when recovery dropped a torn WAL tail
threads N: parallel enumeration on N threads (0 = one per CPU, capped at 16)
--ask: existence only — prints true/false, exits 0 iff an answer exists (stops at first witness)
--limit K: prints at most K answer tuples, stopping the search early
graph FILE: text (one `src label dst` per line) or CRPQ binary snapshot";

/// Either a paper semantics or a §7 trail semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AnySemantics {
    Core(Semantics),
    Trail(TrailSemantics),
}

fn parse_semantics(name: &str) -> Result<AnySemantics, String> {
    Ok(match name {
        "st" | "standard" => AnySemantics::Core(Semantics::Standard),
        "a-inj" | "atom-injective" => AnySemantics::Core(Semantics::AtomInjective),
        "q-inj" | "query-injective" => AnySemantics::Core(Semantics::QueryInjective),
        "a-trail" => AnySemantics::Trail(TrailSemantics::AtomTrail),
        "q-trail" => AnySemantics::Trail(TrailSemantics::QueryTrail),
        other => return Err(format!("unknown semantics `{other}`")),
    })
}

/// Minimal `--flag value` parser.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.windows(2)
        .find(|w| w[0] == format!("--{name}"))
        .map(|w| w[1].as_str())
}

fn require<'a>(args: &'a [String], name: &str) -> Result<&'a str, String> {
    flag(args, name).ok_or_else(|| format!("missing --{name}"))
}

/// Dispatches a command; `Ok` carries the output plus the process exit
/// code (nonzero only for `eval --ask` on an empty answer, grep-style).
fn run(args: &[String]) -> Result<(String, u8), String> {
    let command = args.first().ok_or("missing command")?;
    match command.as_str() {
        "eval" => cmd_eval(&args[1..]),
        "contain" => cmd_contain(&args[1..]).map(|out| (out, 0)),
        "classify" => cmd_classify(&args[1..]).map(|out| (out, 0)),
        "bounded" => cmd_bounded(&args[1..]).map(|out| (out, 0)),
        "graph-info" => cmd_graph_info(&args[1..]).map(|out| (out, 0)),
        "db-init" => cmd_db_init(&args[1..]).map(|out| (out, 0)),
        "db-apply" => cmd_db_apply(&args[1..]).map(|out| (out, 0)),
        "db-info" => cmd_db_info(&args[1..]),
        other => Err(format!("unknown command `{other}`")),
    }
}

fn load_graph(path: &str) -> Result<GraphDb, String> {
    // Read raw bytes (not `read_to_string`): binary snapshots are legal
    // input, and a non-UTF-8 file must fail with a format diagnostic, not
    // an IO-layer UTF-8 error.
    let data = std::fs::read(path).map_err(|e| format!("cannot read graph file `{path}`: {e}"))?;
    parse_graph_auto(data).map_err(|e| format!("cannot parse graph file `{path}`: {e}"))
}

fn cmd_eval(args: &[String]) -> Result<(String, u8), String> {
    let mut g = load_graph(require(args, "graph")?)?;
    let query_text = require(args, "query")?;
    let q = parse_crpq(query_text, g.alphabet_mut()).map_err(|e| e.to_string())?;
    let sem = parse_semantics(flag(args, "semantics").unwrap_or("st"))?;

    // `--threads N` routes enumeration through the work-stealing parallel
    // engine; N = 0 keeps the documented fallback (one thread per
    // available CPU, capped at 16).
    let threads: Option<usize> = flag(args, "threads")
        .map(|t| t.parse().map_err(|e| format!("bad --threads: {e}")))
        .transpose()?;
    let ask = args.iter().any(|a| a == "--ask");
    let limit: Option<usize> = flag(args, "limit")
        .map(|k| k.parse().map_err(|e| format!("bad --limit: {e}")))
        .transpose()?;
    if ask && limit.is_some() {
        return Err("--ask and --limit are mutually exclusive".into());
    }
    if (ask || limit.is_some()) && flag(args, "tuple").is_some() {
        return Err("--ask/--limit query the answer set; --tuple tests one tuple".into());
    }

    if ask {
        let exists = match (sem, threads) {
            (AnySemantics::Core(s), Some(t)) => eval_ask_parallel(&q, &g, s, t),
            (AnySemantics::Core(s), None) => eval_ask(&q, &g, s),
            // Trail semantics have no early-exit engine; existence via the
            // materialised set keeps --ask total over every semantics.
            (AnySemantics::Trail(s), _) => !eval_tuples_trail(&q, &g, s).is_empty(),
        };
        // grep-style exit status: 0 iff at least one answer exists.
        return Ok((exists.to_string(), u8::from(!exists)));
    }

    if let Some(tuple_text) = flag(args, "tuple") {
        let tuple: Vec<NodeId> = tuple_text
            .split(',')
            .map(|name| {
                let name = name.trim();
                // `#id` addresses nodes of anonymous (nameless) graphs —
                // the same rendering the output paths use for them. Named
                // graphs resolve strictly by name: a stored name may
                // legitimately start with `#`, and an id typo must error,
                // not silently test a different node.
                let by_id = if g.is_named() {
                    None
                } else {
                    name.strip_prefix('#').and_then(|id| {
                        let id: u32 = id.parse().ok()?;
                        ((id as usize) < g.num_nodes()).then_some(NodeId(id))
                    })
                };
                by_id
                    .or_else(|| g.node_by_name(name))
                    .ok_or_else(|| format!("unknown node `{name}`"))
            })
            .collect::<Result<_, _>>()?;
        // Guard the library's arity assertion: a wrong-length --tuple must
        // be a CLI error, not a panic backtrace.
        if tuple.len() != q.free.len() {
            return Err(format!(
                "--tuple has {} node(s) but the query's free tuple has arity {}",
                tuple.len(),
                q.free.len()
            ));
        }
        if args.iter().any(|a| a == "--witness") {
            let AnySemantics::Core(s) = sem else {
                return Err("--witness is implemented for st/a-inj/q-inj".into());
            };
            let out = match eval_witness(&q, &g, &tuple, s) {
                None => format!("({tuple_text}) ∉ Q(G)"),
                Some(w) => {
                    let mut out = format!("({tuple_text}) ∈ Q(G); witness paths:\n");
                    for (i, path) in w.atom_paths.iter().enumerate() {
                        let names: Vec<_> = path.iter().map(|&n| g.display_name(n)).collect();
                        out.push_str(&format!("  atom {i}: {}\n", names.join(" → ")));
                    }
                    out.trim_end().to_owned()
                }
            };
            return Ok((out, 0));
        }
        let member = match sem {
            AnySemantics::Core(s) => eval_contains(&q, &g, &tuple, s),
            AnySemantics::Trail(s) => eval_contains_trail(&q, &g, &tuple, s),
        };
        return Ok((format!("({tuple_text}) ∈ Q(G): {member}"), 0));
    }

    let tuples = match (sem, threads, limit) {
        (AnySemantics::Core(s), Some(t), Some(k)) => eval_limit_parallel(&q, &g, s, k, t),
        (AnySemantics::Core(s), None, Some(k)) => eval_limit(&q, &g, s, k),
        (AnySemantics::Core(s), Some(t), None) => eval_tuples_parallel(&q, &g, s, t),
        (AnySemantics::Core(s), None, None) => eval_tuples(&q, &g, s),
        (AnySemantics::Trail(s), _, k) => {
            // Trail enumeration has no early-exit engine; truncating the
            // materialised set keeps --limit total over every semantics.
            let mut tuples = eval_tuples_trail(&q, &g, s);
            if let Some(k) = k {
                tuples.truncate(k);
            }
            tuples
        }
    };
    let mut out = match limit {
        Some(k) => format!("{} result(s) (limit {k}):\n", tuples.len()),
        None => format!("{} result(s):\n", tuples.len()),
    };
    for t in &tuples {
        let names: Vec<_> = t.iter().map(|&n| g.display_name(n)).collect();
        out.push_str(&format!("  ({})\n", names.join(", ")));
    }
    Ok((out.trim_end().to_owned(), 0))
}

fn cmd_contain(args: &[String]) -> Result<String, String> {
    let mut sigma = Interner::new();
    let q1 = parse_crpq(require(args, "q1")?, &mut sigma).map_err(|e| e.to_string())?;
    let q2 = parse_crpq(require(args, "q2")?, &mut sigma).map_err(|e| e.to_string())?;
    let sem = match parse_semantics(flag(args, "semantics").unwrap_or("st"))? {
        AnySemantics::Core(s) => s,
        AnySemantics::Trail(_) => {
            return Err("containment is implemented for st/a-inj/q-inj".into())
        }
    };
    let out = contain(&q1, &q2, sem);
    Ok(match out {
        Outcome::Contained => format!("Q1 ⊆{} Q2", sem.short_name()),
        Outcome::NotContained(ce) => format!(
            "Q1 ⊄{} Q2 (counter-example with {} atoms, {} merges)",
            sem.short_name(),
            ce.witness.atoms.len(),
            ce.merges
        ),
        Outcome::Inconclusive { limits } => format!(
            "inconclusive within budget (max word length {}): no counter-example found",
            limits.max_word_len
        ),
    })
}

fn cmd_classify(args: &[String]) -> Result<String, String> {
    use crpq::automata::tractability::{classify, AnalysisLimits};
    let mut sigma = Interner::new();
    let q = parse_crpq(require(args, "query")?, &mut sigma).map_err(|e| e.to_string())?;
    let mut out = format!(
        "class: {}\natoms: {}\nvariables: {}\nfree arity: {}\nconnected: {}\nε-atoms: {}",
        q.classify(),
        q.atoms.len(),
        q.num_vars,
        q.free.len(),
        q.is_connected(),
        q.has_epsilon_atoms(),
    );
    out.push_str("\nsimple-path classes:");
    for (i, atom) in q.atoms.iter().enumerate() {
        let nfa = atom.nfa();
        let verdict = match classify(&nfa, &nfa.symbols(), AnalysisLimits::default()) {
            Some(SimplePathClass::Finite { max_len }) => {
                format!("finite (≤ {max_len}; AC0-style)")
            }
            Some(SimplePathClass::DeletionClosed) => {
                "deletion-closed (reachability fast path)".into()
            }
            Some(SimplePathClass::ParityHard) => "parity-hard (NP-style)".into(),
            Some(SimplePathClass::Frontier) => "frontier (no guarantee)".into(),
            None => "inconclusive (monoid cap)".into(),
        };
        out.push_str(&format!("\n  atom {i}: {verdict}"));
    }
    Ok(out)
}

fn cmd_bounded(args: &[String]) -> Result<String, String> {
    let mut sigma = Interner::new();
    let q = parse_crpq(require(args, "query")?, &mut sigma).map_err(|e| e.to_string())?;
    let mut config = BoundednessConfig::default();
    if let Some(k) = flag(args, "max-level") {
        config.max_level = k.parse().map_err(|e| format!("bad --max-level: {e}"))?;
    }
    Ok(match check_boundedness(&q, config) {
        Boundedness::Bounded { level, union } => format!(
            "bounded (certified): equivalent to a union of {} CQ(s) at level {level}",
            union.len()
        ),
        Boundedness::BoundedUpTo { level, limits } => format!(
            "bounded up to budget (word length ≤ {}): Q ≡ Q^(≤{level}) held on every candidate",
            limits.max_word_len
        ),
        Boundedness::Refuted { level, .. } => {
            format!("unbounded evidence: every truncation level ≤ {level} refuted")
        }
    })
}

fn cmd_graph_info(args: &[String]) -> Result<String, String> {
    let g = load_graph(require(args, "graph")?)?;
    let labels: Vec<&str> = g.alphabet().iter().map(|(_, n)| n).collect();
    Ok(format!(
        "nodes: {}\nedges: {}\nlabels: {}",
        g.num_nodes(),
        g.num_edges(),
        labels.join(", ")
    ))
}

fn parse_sync(args: &[String]) -> Result<SyncPolicy, String> {
    SyncPolicy::parse(flag(args, "sync").unwrap_or("always"))
}

/// Node addressing for durable-store mutations — same contract as
/// `--tuple`: named snapshots resolve strictly by name, anonymous ones by
/// `#id` (bounds-checked against the *recovered* node count, so nodes
/// appended by `add-node` records are addressable).
fn resolve_node(g: &DeltaGraph, name: &str) -> Result<NodeId, String> {
    let by_id = if g.base().is_named() {
        None
    } else {
        name.strip_prefix('#').and_then(|id| {
            let id: u32 = id.parse().ok()?;
            ((id as usize) < GraphView::num_nodes(g)).then_some(NodeId(id))
        })
    };
    by_id
        .or_else(|| g.base().node_by_name(name))
        .ok_or_else(|| format!("unknown node `{name}`"))
}

fn cmd_db_init(args: &[String]) -> Result<String, String> {
    let g = load_graph(require(args, "graph")?)?;
    let snap = require(args, "snapshot")?;
    let wal = require(args, "wal")?;
    let policy = parse_sync(args)?;
    let d = DurableGraph::create(snap, wal, g, policy).map_err(|e| e.to_string())?;
    Ok(format!(
        "initialised durable store ({} node(s), {} edge(s))\nsnapshot: {snap}\nwal: {wal}\nsync policy: {policy}",
        GraphView::num_nodes(d.graph()),
        GraphView::num_edges(d.graph()),
    ))
}

fn cmd_db_apply(args: &[String]) -> Result<String, String> {
    let snap = require(args, "snapshot")?;
    let wal = require(args, "wal")?;
    let policy = parse_sync(args)?;
    let path = require(args, "mutations")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read mutations file `{path}`: {e}"))?;
    let (mut d, report) = DurableGraph::open(snap, wal, policy).map_err(|e| e.to_string())?;
    let mut applied = 0usize;
    let mut noops = 0usize;
    for (idx, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let at = |e: String| format!("{path}:{}: {e}", idx + 1);
        let parts: Vec<&str> = line.split_whitespace().collect();
        let changed = match parts.as_slice() {
            ["add-node"] => {
                d.add_node().map_err(|e| at(e.to_string()))?;
                true
            }
            ["insert", u, l, v] | ["delete", u, l, v] => {
                let un = resolve_node(d.graph(), u).map_err(at)?;
                let vn = resolve_node(d.graph(), v).map_err(at)?;
                let sym = d.label(l).map_err(|e| at(e.to_string()))?;
                let res = if parts[0] == "insert" {
                    d.insert_edge(un, sym, vn)
                } else {
                    d.delete_edge(un, sym, vn)
                };
                res.map_err(|e| at(e.to_string()))?
            }
            _ => {
                return Err(at(format!(
                    "expected `insert SRC LABEL DST`, `delete SRC LABEL DST` or `add-node`, \
                     got `{line}`"
                )))
            }
        };
        if changed {
            applied += 1;
        } else {
            noops += 1;
        }
    }
    d.sync_wal().map_err(|e| e.to_string())?;
    let mut out = format!(
        "recovered {} record(s), applied {applied} mutation(s) ({noops} no-op(s))",
        report.replayed
    );
    if args.iter().any(|a| a == "--compact") {
        d.compact().map_err(|e| e.to_string())?;
        out.push_str("\ncompacted: checkpoint rewritten, wal truncated");
    } else {
        out.push_str(&format!(
            "\nwal records since checkpoint: {}",
            d.records_since_checkpoint()
        ));
    }
    Ok(out)
}

/// Opens the store (running recovery) and reports what was found. Exits 1
/// — message naming the byte offset — when recovery dropped a torn WAL
/// tail, so scripted health checks notice data loss; corruption behind
/// durable records is a hard `error:` exit like every other failure.
fn cmd_db_info(args: &[String]) -> Result<(String, u8), String> {
    let snap = require(args, "snapshot")?;
    let wal = require(args, "wal")?;
    let (d, report) =
        DurableGraph::open(snap, wal, SyncPolicy::Never).map_err(|e| e.to_string())?;
    let g = d.graph();
    let mut out = format!(
        "nodes: {}\nedges: {}\nwal records replayed: {}\nwal bytes: {}",
        GraphView::num_nodes(g),
        GraphView::num_edges(g),
        report.replayed,
        report.good_wal_bytes,
    );
    if report.fresh_wal {
        out.push_str("\nwal: fresh");
    }
    if report.stale_wal {
        out.push_str("\nwal: stale (discarded; superseded by the checkpoint)");
    }
    if !report.mutated_labels.is_empty() {
        let names: Vec<&str> = report
            .mutated_labels
            .iter()
            .map(|&l| GraphView::alphabet(g).resolve(l))
            .collect();
        out.push_str(&format!("\nmutated labels: {}", names.join(", ")));
    }
    match &report.dropped_tail {
        Some(tail) => {
            out.push_str(&format!(
                "\nwarning: torn wal tail dropped at byte offset {}: {}",
                tail.offset, tail.reason
            ));
            Ok((out, 1))
        }
        None => Ok((out, 0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(parts: &[&str]) -> Vec<String> {
        parts.iter().map(std::string::ToString::to_string).collect()
    }

    /// [`run`] minus the exit code, for tests that only assert on output.
    fn run_ok(args: &[String]) -> Result<String, String> {
        run(args).map(|(out, _)| out)
    }

    #[test]
    fn flag_parsing() {
        let args = a(&["--q1", "x -[a]-> y", "--semantics", "q-inj"]);
        assert_eq!(flag(&args, "q1"), Some("x -[a]-> y"));
        assert_eq!(flag(&args, "semantics"), Some("q-inj"));
        assert_eq!(flag(&args, "missing"), None);
        assert!(require(&args, "q2").is_err());
    }

    #[test]
    fn semantics_names() {
        assert_eq!(
            parse_semantics("st").unwrap(),
            AnySemantics::Core(Semantics::Standard)
        );
        assert_eq!(
            parse_semantics("q-trail").unwrap(),
            AnySemantics::Trail(TrailSemantics::QueryTrail)
        );
        assert!(parse_semantics("bogus").is_err());
    }

    #[test]
    fn contain_command_end_to_end() {
        let out = run_ok(&a(&[
            "contain",
            "--q1",
            "x -[a]-> y, y -[b]-> z",
            "--q2",
            "x -[a b]-> y",
            "--semantics",
            "a-inj",
        ]))
        .unwrap();
        assert!(out.contains('⊄'), "{out}");
        let out = run_ok(&a(&[
            "contain",
            "--q1",
            "x -[a]-> y, y -[b]-> z",
            "--q2",
            "x -[a b]-> y",
            "--semantics",
            "q-inj",
        ]))
        .unwrap();
        assert!(out.contains('⊆'), "{out}");
    }

    #[test]
    fn classify_command() {
        let out = run_ok(&a(&["classify", "--query", "(x, y) <- x -[(a b)*]-> y"])).unwrap();
        assert!(out.contains("class: CRPQ"), "{out}");
        assert!(out.contains("free arity: 2"), "{out}");
    }

    #[test]
    fn eval_command_with_temp_graph() {
        let dir = std::env::temp_dir().join("crpq_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "u a v\nv b w\n").unwrap();
        let p = path.to_str().unwrap();
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a b]-> y",
        ]))
        .unwrap();
        assert!(out.contains("1 result(s)"), "{out}");
        assert!(out.contains("(u, w)"), "{out}");
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a b]-> y",
            "--tuple",
            "u,w",
            "--semantics",
            "q-trail",
        ]))
        .unwrap();
        assert!(out.contains("true"), "{out}");
        let out = run_ok(&a(&["graph-info", "--graph", p])).unwrap();
        assert!(out.contains("nodes: 3"), "{out}");
    }

    #[test]
    fn eval_threads_flag() {
        let dir = std::env::temp_dir().join("crpq_cli_test_threads");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "u a v\nv a w\nw b x\n").unwrap();
        let p = path.to_str().unwrap();
        let query = "(x, y) <- x -[a a*]-> y, y -[b]-> z";
        let seq = run_ok(&a(&["eval", "--graph", p, "--query", query])).unwrap();
        for threads in ["0", "1", "4"] {
            let par = run_ok(&a(&[
                "eval",
                "--graph",
                p,
                "--query",
                query,
                "--threads",
                threads,
            ]))
            .unwrap();
            assert_eq!(seq, par, "--threads {threads} changed the result");
        }
        let err = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            query,
            "--threads",
            "many",
        ]))
        .unwrap_err();
        assert!(err.contains("bad --threads"), "{err}");
    }

    #[test]
    fn ask_flag_exit_codes_and_output() {
        let dir = std::env::temp_dir().join("crpq_cli_test_ask");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "u a v\nv a w\nw b x\n").unwrap();
        let p = path.to_str().unwrap();
        // Existing answer: prints true, exits 0 — sequential and parallel.
        for extra in [&[][..], &["--threads", "2"][..]] {
            let mut args = a(&[
                "eval",
                "--graph",
                p,
                "--query",
                "(x, y) <- x -[a a]-> y",
                "--ask",
            ]);
            args.extend(extra.iter().map(std::string::ToString::to_string));
            let (out, code) = run(&args).unwrap();
            assert_eq!(out, "true");
            assert_eq!(code, 0, "existing answer must exit 0");
        }
        // No answer: prints false, exits nonzero (still Ok — not an error).
        let (out, code) = run(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[b a]-> y",
            "--ask",
        ]))
        .unwrap();
        assert_eq!(out, "false");
        assert_eq!(code, 1, "empty answer must exit 1");
        // Trail semantics stay total under --ask.
        let (out, code) = run(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a a]-> y",
            "--ask",
            "--semantics",
            "a-trail",
        ]))
        .unwrap();
        assert_eq!((out.as_str(), code), ("true", 0));
    }

    #[test]
    fn limit_flag_caps_printed_tuples() {
        let dir = std::env::temp_dir().join("crpq_cli_test_limit");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "u a v\nv a w\nw a x\n").unwrap();
        let p = path.to_str().unwrap();
        let query = "(x, y) <- x -[a a*]-> y";
        // The full answer set has 6 pairs; --limit k prints exactly
        // min(k, 6) of them, each a true answer line.
        let full = run_ok(&a(&["eval", "--graph", p, "--query", query])).unwrap();
        assert!(full.contains("6 result(s)"), "{full}");
        for (k, expect) in [("0", 0), ("2", 2), ("6", 6), ("10", 6)] {
            for extra in [&[][..], &["--threads", "2"][..]] {
                let mut args = a(&["eval", "--graph", p, "--query", query, "--limit", k]);
                args.extend(extra.iter().map(std::string::ToString::to_string));
                let out = run_ok(&args).unwrap();
                assert!(
                    out.starts_with(&format!("{expect} result(s) (limit {k})")),
                    "k={k}: {out}"
                );
                let lines: Vec<&str> = out.lines().skip(1).collect();
                assert_eq!(lines.len(), expect, "k={k} printed {out}");
                assert!(
                    lines.iter().all(|l| full.contains(l.trim())),
                    "k={k} printed a non-answer: {out}"
                );
            }
        }
        // Trail semantics stay total under --limit.
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            query,
            "--limit",
            "1",
            "--semantics",
            "a-trail",
        ]))
        .unwrap();
        assert!(out.contains("1 result(s) (limit 1)"), "{out}");
    }

    #[test]
    fn ask_and_limit_flag_misuse_errors() {
        let dir = std::env::temp_dir().join("crpq_cli_test_misuse");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "u a v\n").unwrap();
        let p = path.to_str().unwrap();
        let base = ["eval", "--graph", p, "--query", "(x, y) <- x -[a]-> y"];
        // Malformed --limit values: parse errors, not panics or silences.
        for bad in ["many", "-1", "1.5", ""] {
            let mut args = a(&base);
            args.extend(["--limit".to_string(), bad.to_string()]);
            let err = run(&args).unwrap_err();
            assert!(err.contains("bad --limit"), "--limit {bad:?}: {err}");
        }
        // Conflicting flag combinations.
        let mut args = a(&base);
        args.extend(["--ask".to_string(), "--limit".to_string(), "1".to_string()]);
        let err = run(&args).unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
        for exclusive in [&["--ask"][..], &["--limit", "1"][..]] {
            let mut args = a(&base);
            args.extend(exclusive.iter().map(std::string::ToString::to_string));
            args.extend(["--tuple".to_string(), "u,v".to_string()]);
            let err = run(&args).unwrap_err();
            assert!(err.contains("--tuple"), "{exclusive:?}: {err}");
        }
    }

    #[test]
    fn unknown_command_errors() {
        assert!(run_ok(&a(&["frobnicate"])).is_err());
        assert!(run(&[]).is_err());
    }

    #[test]
    fn user_input_failures_are_errors_not_panics() {
        let dir = std::env::temp_dir().join("crpq_cli_test_err");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "u a v\n").unwrap();
        let p = path.to_str().unwrap();
        // Malformed --semantics.
        let err = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "x -[a]-> y",
            "--semantics",
            "bogus",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown semantics"), "{err}");
        // Missing graph file.
        let err = run_ok(&a(&[
            "eval",
            "--graph",
            "/no/such/file.graph",
            "--query",
            "x -[a]-> y",
        ]))
        .unwrap_err();
        assert!(err.contains("cannot read graph file"), "{err}");
        // Unreadable (corrupted) binary graph: magic intact, body garbage.
        let bin = dir.join("bad.bin");
        std::fs::write(&bin, b"CRPQ\x01\xff\xff\xff\xff").unwrap();
        let err = run_ok(&a(&["graph-info", "--graph", bin.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("cannot parse graph file"), "{err}");
        // Non-UTF-8 garbage without the magic.
        let raw = dir.join("raw.bin");
        std::fs::write(&raw, [0xffu8, 0xfe, 0x00]).unwrap();
        let err = run_ok(&a(&["graph-info", "--graph", raw.to_str().unwrap()])).unwrap_err();
        assert!(err.contains("neither"), "{err}");
        // Wrong-arity --tuple.
        let err = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a]-> y",
            "--tuple",
            "u",
        ]))
        .unwrap_err();
        assert!(err.contains("arity"), "{err}");
        // Unknown node in --tuple.
        let err = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a]-> y",
            "--tuple",
            "u,ghost",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown node"), "{err}");
        // `#id` addressing is for anonymous graphs only: on a named graph
        // it must not silently resolve to a node id.
        let err = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a]-> y",
            "--tuple",
            "u,#0",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown node"), "{err}");
    }

    #[test]
    fn binary_snapshot_graphs_load() {
        use crpq::graph::format::{parse_graph_text, to_binary};
        let dir = std::env::temp_dir().join("crpq_cli_test_bin");
        std::fs::create_dir_all(&dir).unwrap();
        let g = parse_graph_text("u a v\nv b w\n").unwrap();
        let path = dir.join("g.bin");
        std::fs::write(&path, to_binary(&g).to_vec()).unwrap();
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            path.to_str().unwrap(),
            "--query",
            "(x, y) <- x -[a b]-> y",
        ]))
        .unwrap();
        assert!(out.contains("(u, w)"), "{out}");
        let out = run_ok(&a(&["graph-info", "--graph", path.to_str().unwrap()])).unwrap();
        assert!(out.contains("nodes: 3"), "{out}");
    }

    #[test]
    fn anonymous_snapshot_graphs_eval_with_id_addressing() {
        use crpq::graph::format::to_binary;
        use crpq::graph::{GraphBuilder, NodeId};
        let dir = std::env::temp_dir().join("crpq_cli_test_anon");
        std::fs::create_dir_all(&dir).unwrap();
        let mut b = GraphBuilder::anonymous(3);
        let a_sym = b.label("a");
        let b_sym = b.label("b");
        b.edge_ids(NodeId(0), a_sym, NodeId(1));
        b.edge_ids(NodeId(1), b_sym, NodeId(2));
        let path = dir.join("g.bin");
        std::fs::write(&path, to_binary(&b.finish()).to_vec()).unwrap();
        let p = path.to_str().unwrap();
        // Result tuples print the #id rendering instead of panicking.
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a b]-> y",
        ]))
        .unwrap();
        assert!(out.contains("(#0, #2)"), "{out}");
        // …and the same rendering addresses nodes in --tuple.
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a b]-> y",
            "--tuple",
            "#0,#2",
        ]))
        .unwrap();
        assert!(out.contains("true"), "{out}");
        let err = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a b]-> y",
            "--tuple",
            "#0,#9",
        ]))
        .unwrap_err();
        assert!(err.contains("unknown node"), "{err}");
    }

    #[test]
    fn classify_reports_simple_path_classes() {
        let out = run_ok(&a(&["classify", "--query", "x -[a*]-> y, x -[(a a)*]-> y"])).unwrap();
        assert!(out.contains("deletion-closed"), "{out}");
        assert!(out.contains("parity-hard"), "{out}");
    }

    #[test]
    fn bounded_command() {
        let out = run_ok(&a(&["bounded", "--query", "(x, y) <- x -[a b + c]-> y"])).unwrap();
        assert!(out.contains("bounded (certified)"), "{out}");
        let out = run_ok(&a(&[
            "bounded",
            "--query",
            "(x, y) <- x -[a a*]-> y",
            "--max-level",
            "2",
        ]))
        .unwrap();
        assert!(out.contains("unbounded evidence"), "{out}");
    }

    /// Fresh per-test scratch dir (durability tests mutate real files, so
    /// a stale store from an earlier run must not leak in).
    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("crpq_cli_test_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn db_roundtrip_init_apply_info() {
        let dir = scratch("db");
        let g = dir.join("g.txt");
        std::fs::write(&g, "u a v\nv b w\n").unwrap();
        let m = dir.join("m.txt");
        std::fs::write(
            &m,
            "# churn\ninsert u a w\ninsert v a u\ndelete u a v\nadd-node\n",
        )
        .unwrap();
        let (snap, wal) = (dir.join("g.snap"), dir.join("g.wal"));
        let (snap, wal) = (snap.to_str().unwrap(), wal.to_str().unwrap());

        let out = run_ok(&a(&[
            "db-init",
            "--graph",
            g.to_str().unwrap(),
            "--snapshot",
            snap,
            "--wal",
            wal,
        ]))
        .unwrap();
        assert!(out.contains("3 node(s), 2 edge(s)"), "{out}");
        let out = run_ok(&a(&[
            "db-apply",
            "--snapshot",
            snap,
            "--wal",
            wal,
            "--mutations",
            m.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("applied 4 mutation(s)"), "{out}");
        // Reopen: the four records replay; exit 0 (no torn tail).
        let (out, code) = run(&a(&["db-info", "--snapshot", snap, "--wal", wal])).unwrap();
        assert_eq!(code, 0, "{out}");
        assert!(out.contains("nodes: 4"), "{out}");
        assert!(out.contains("wal records replayed: 4"), "{out}");
        assert!(out.contains("mutated labels: a"), "{out}");
        // Re-applying the same file is all no-ops except add-node.
        let out = run_ok(&a(&[
            "db-apply",
            "--snapshot",
            snap,
            "--wal",
            wal,
            "--mutations",
            m.to_str().unwrap(),
            "--compact",
        ]))
        .unwrap();
        assert!(out.contains("recovered 4 record(s)"), "{out}");
        assert!(out.contains("compacted"), "{out}");
        // After compaction the checkpoint IS the graph: plain eval sees the
        // applied mutations, and the WAL is bare.
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            snap,
            "--query",
            "(x, y) <- x -[a]-> y",
        ]))
        .unwrap();
        assert!(out.contains("(u, w)") && out.contains("(v, u)"), "{out}");
        assert!(!out.contains("(u, v)"), "deleted edge resurfaced: {out}");
        let (out, code) = run(&a(&["db-info", "--snapshot", snap, "--wal", wal])).unwrap();
        assert_eq!(code, 0);
        assert!(out.contains("wal records replayed: 0"), "{out}");
        // Bad mutation lines are positional errors, not panics.
        std::fs::write(&m, "insert u a\n").unwrap();
        let err = run(&a(&[
            "db-apply",
            "--snapshot",
            snap,
            "--wal",
            wal,
            "--mutations",
            m.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains(":1:") && err.contains("expected"), "{err}");
        std::fs::write(&m, "insert u a ghost\n").unwrap();
        let err = run(&a(&[
            "db-apply",
            "--snapshot",
            snap,
            "--wal",
            wal,
            "--mutations",
            m.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("unknown node `ghost`"), "{err}");
    }

    /// Satellite: a truncated v2 snapshot errors with the byte offset —
    /// nonzero exit, no panic.
    #[test]
    fn db_truncated_snapshot_names_byte_offset() {
        use crpq::graph::format::{parse_graph_text, to_binary};
        let dir = scratch("db_trunc");
        let bytes = to_binary(&parse_graph_text("u a v\nv b w\n").unwrap()).to_vec();
        let snap = dir.join("g.snap");
        std::fs::write(&snap, &bytes[..bytes.len() - 6]).unwrap();
        let wal = dir.join("g.wal");
        let err = run(&a(&[
            "db-info",
            "--snapshot",
            snap.to_str().unwrap(),
            "--wal",
            wal.to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("byte offset"), "{err}");
        assert!(err.contains("g.snap"), "{err}");
    }

    /// Satellite: a bad-CRC snapshot errors with the trailer's byte offset.
    #[test]
    fn db_bad_crc_snapshot_names_byte_offset() {
        use crpq::graph::format::{parse_graph_text, to_binary};
        let dir = scratch("db_crc");
        // Flip bit 0 of the last edge's dst id (`u` = node 0 → node 1):
        // still a valid node id, so the structural decode succeeds and the
        // checksum is what catches the corruption.
        let mut bytes = to_binary(&parse_graph_text("u a v\nw b u\n").unwrap()).to_vec();
        let idx = bytes.len() - 8;
        bytes[idx] ^= 0x01;
        let snap = dir.join("g.snap");
        std::fs::write(&snap, &bytes).unwrap();
        let err = run(&a(&[
            "db-info",
            "--snapshot",
            snap.to_str().unwrap(),
            "--wal",
            dir.join("g.wal").to_str().unwrap(),
        ]))
        .unwrap_err();
        assert!(err.contains("checksum mismatch"), "{err}");
        assert!(
            err.contains(&format!("byte offset {}", bytes.len() - 4)),
            "{err}"
        );
    }

    /// Satellite: WAL damage — a bad-CRC record *behind* durable records
    /// is a hard error naming the byte offset; a torn tail is dropped with
    /// a warning naming the byte offset and a nonzero exit.
    #[test]
    fn db_bad_crc_and_torn_wal_name_byte_offsets() {
        let dir = scratch("db_wal");
        let g = dir.join("g.txt");
        std::fs::write(&g, "u a v\nv b w\n").unwrap();
        let m = dir.join("m.txt");
        std::fs::write(&m, "insert u a w\ninsert v a u\ninsert w b u\n").unwrap();
        let (snap, wal) = (dir.join("g.snap"), dir.join("g.wal"));
        let (snap, wal) = (snap.to_str().unwrap(), wal.to_str().unwrap());
        run_ok(&a(&[
            "db-init",
            "--graph",
            g.to_str().unwrap(),
            "--snapshot",
            snap,
            "--wal",
            wal,
        ]))
        .unwrap();
        run_ok(&a(&[
            "db-apply",
            "--snapshot",
            snap,
            "--wal",
            wal,
            "--mutations",
            m.to_str().unwrap(),
        ]))
        .unwrap();
        let pristine = std::fs::read(wal).unwrap();

        // Flip a byte in the FIRST mutation record (header is 21 bytes):
        // two intact records follow, so this is mid-log corruption — hard
        // error at the damaged frame's offset, never a silent truncation.
        let mut bad = pristine.clone();
        bad[26] ^= 0x10;
        std::fs::write(wal, &bad).unwrap();
        let err = run(&a(&["db-info", "--snapshot", snap, "--wal", wal])).unwrap_err();
        assert!(err.contains("byte offset 21"), "{err}");

        // Tear the final record mid-payload: recovery drops it, reports the
        // offset, and exits 1.
        std::fs::write(wal, &pristine[..pristine.len() - 7]).unwrap();
        let (out, code) = run(&a(&["db-info", "--snapshot", snap, "--wal", wal])).unwrap();
        assert_eq!(code, 1, "torn tail must exit nonzero: {out}");
        // The dropped frame starts one 21-byte edge record before EOF.
        assert!(
            out.contains(&format!("byte offset {}", pristine.len() - 21)),
            "{out}"
        );
        assert!(out.contains("wal records replayed: 2"), "{out}");
        // The store stays usable after the lossy recovery (tail truncated).
        let (out, code) = run(&a(&["db-info", "--snapshot", snap, "--wal", wal])).unwrap();
        assert_eq!(code, 0, "recovery must have repaired the wal: {out}");
        assert!(out.contains("wal records replayed: 2"), "{out}");
    }

    #[test]
    fn eval_witness_flag() {
        let dir = std::env::temp_dir().join("crpq_cli_test_w");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        std::fs::write(&path, "u a v\nv b w\n").unwrap();
        let p = path.to_str().unwrap();
        let out = run_ok(&a(&[
            "eval",
            "--graph",
            p,
            "--query",
            "(x, y) <- x -[a b]-> y",
            "--tuple",
            "u,w",
            "--semantics",
            "a-inj",
            "--witness",
        ]))
        .unwrap();
        assert!(out.contains("u → v → w"), "{out}");
    }
}
