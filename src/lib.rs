//! # crpq — Conjunctive Regular Path Queries under Injective Semantics
//!
//! A from-scratch Rust reproduction of *“Conjunctive Regular Path Queries
//! under Injective Semantics”* (Figueira & Romero, PODS 2023). This facade
//! crate re-exports the workspace crates:
//!
//! * [`automata`] — regular expressions, NFAs, DFAs and language algebra;
//! * [`graph`] — the edge-labelled graph database engine and RPQ path search;
//! * [`query`] — CQs, CRPQs, expansions and homomorphism engines;
//! * [`core`] — evaluation under the three semantics (`st`, `a-inj`, `q-inj`);
//! * [`containment`] — containment engines, including the PSpace abstraction
//!   algorithm for query-injective containment (Theorem 5.1 / Appendix C);
//! * [`reductions`] — the paper's hardness reductions (PCP, GCP2, ∀∃-QBF,
//!   subgraph isomorphism) with brute-force ground truth;
//! * [`workloads`] — seeded instance generators for the experiment suite.
//!
//! ## Quick start
//!
//! ```
//! use crpq::prelude::*;
//!
//! // A graph database: a directed path of two b-edges.
//! let mut b = GraphBuilder::new();
//! b.edge("u", "b", "v");
//! b.edge("v", "b", "w");
//! let mut g = b.finish();
//!
//! // The paper's §1 example:
//! // Q() = ∃x,y,z. x -(a+b)⁺-> y ∧ x -(b+c)⁺-> z   (Boolean query)
//! let q = parse_crpq(
//!     "x -[(a+b)(a+b)*]-> y, x -[(b+c)(b+c)*]-> z",
//!     g.alphabet_mut(),
//! )
//! .unwrap();
//!
//! // Overlapping witness paths are fine under standard and atom-injective
//! // semantics…
//! assert!(eval_boolean(&q, &g, Semantics::Standard));
//! assert!(eval_boolean(&q, &g, Semantics::AtomInjective));
//! // …but query-injective semantics demands internally disjoint paths and
//! // an injective variable assignment, which the single b-path cannot offer.
//! assert!(!eval_boolean(&q, &g, Semantics::QueryInjective));
//!
//! // Containment (Example 4.7): Q1 ⊆q-inj Q2 but Q1 ⊄a-inj Q2.
//! let mut sigma = Interner::new();
//! let q1 = parse_crpq("x -[a]-> y, y -[b]-> z", &mut sigma).unwrap();
//! let q2 = parse_crpq("x -[a b]-> y", &mut sigma).unwrap();
//! assert!(contain(&q1, &q2, Semantics::QueryInjective).is_contained());
//! assert!(contain(&q1, &q2, Semantics::AtomInjective).is_not_contained());
//! ```

pub use crpq_automata as automata;
pub use crpq_containment as containment;
pub use crpq_core as core;
pub use crpq_graph as graph;
pub use crpq_query as query;
pub use crpq_reductions as reductions;
pub use crpq_util as util;
pub use crpq_workloads as workloads;

/// Convenience re-exports covering the most common API surface.
pub mod prelude {
    pub use crpq_automata::{classify_simple_path, parse_regex, Dfa, Nfa, Regex, SimplePathClass};
    pub use crpq_containment::{
        check_boundedness, contain, contain_with, recommended_limits, Boundedness,
        BoundednessConfig, ContainmentConfig, Outcome,
    };
    pub use crpq_core::{
        check_hierarchy, eval, eval_boolean, eval_boolean_trail, eval_contains,
        eval_contains_analyzed, eval_contains_trail, eval_tuples, eval_tuples_analyzed,
        eval_tuples_parallel, eval_tuples_trail, eval_witness, verify_witness, Semantics,
        TrailSemantics, Witness,
    };
    pub use crpq_graph::{generators, rpq, DeltaGraph, GraphBuilder, GraphDb, GraphView, NodeId};
    pub use crpq_query::{parse_crpq, Cq, CqAtom, Crpq, CrpqAtom, QueryClass, UnionCrpq, Var};
    pub use crpq_util::{Interner, Symbol};
}
